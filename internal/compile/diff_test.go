package compile_test

// Differential testing: generate random MC programs, run them compiled on
// the VM (optionally through the optimizer and the Forward Semantic
// transform) and interpreted by the independent reference interpreter in
// internal/lang, and require byte-identical output. Programs are
// constructed to terminate and to stay in bounds (masked array indices,
// forced-odd divisors, counted loops), so any divergence is a genuine bug
// in one of the implementations.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"branchcost/internal/compile"
	"branchcost/internal/fs"
	"branchcost/internal/lang"
	"branchcost/internal/opt"
	"branchcost/internal/profile"
	"branchcost/internal/vm"
)

// genRNG is a splitmix64 generator, deterministic per seed.
type genRNG struct{ s uint64 }

func (r *genRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *genRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *genRNG) pick(xs []string) string { return xs[r.intn(len(xs))] }

// progGen builds one random program.
type progGen struct {
	r        *genRNG
	b        strings.Builder
	scalars  []string // global scalars
	arrays   []string // global arrays, all of size 8
	auxFuncs []string // leaf helper functions and their arity
	auxArity map[string]int
	locals   []string // locals of the function being generated
	depth    int
	loops    int
}

func generateProgram(seed uint64) string {
	g := &progGen{r: &genRNG{s: seed}, auxArity: map[string]int{}}

	nScalars := 1 + g.r.intn(3)
	for i := 0; i < nScalars; i++ {
		name := fmt.Sprintf("g%d", i)
		g.scalars = append(g.scalars, name)
		if g.r.intn(2) == 0 {
			fmt.Fprintf(&g.b, "var %s = %d;\n", name, g.r.intn(100)-50)
		} else {
			fmt.Fprintf(&g.b, "var %s;\n", name)
		}
	}
	nArrays := 1 + g.r.intn(2)
	for i := 0; i < nArrays; i++ {
		name := fmt.Sprintf("a%d", i)
		g.arrays = append(g.arrays, name)
		fmt.Fprintf(&g.b, "var %s[8];\n", name)
	}

	// Leaf helper functions (no calls inside, so recursion is impossible).
	nAux := g.r.intn(3)
	for i := 0; i < nAux; i++ {
		name := fmt.Sprintf("f%d", i)
		arity := 1 + g.r.intn(3)
		g.auxFuncs = append(g.auxFuncs, name)
		g.auxArity[name] = arity
		params := make([]string, arity)
		for j := range params {
			params[j] = fmt.Sprintf("p%d", j)
		}
		fmt.Fprintf(&g.b, "func %s(%s) {\n", name, strings.Join(params, ", "))
		g.locals = params
		// A couple of statements without calls or loops.
		n := 1 + g.r.intn(2)
		for s := 0; s < n; s++ {
			g.simpleStmtNoCall(1)
		}
		fmt.Fprintf(&g.b, "\treturn %s;\n}\n", g.exprNoCall(2))
		g.locals = nil
	}

	g.b.WriteString("func main() {\n")
	nLocals := 1 + g.r.intn(3)
	for i := 0; i < nLocals; i++ {
		name := fmt.Sprintf("v%d", i)
		g.locals = append(g.locals, name)
		fmt.Fprintf(&g.b, "\tvar %s = %d;\n", name, g.r.intn(20))
	}
	n := 4 + g.r.intn(8)
	for i := 0; i < n; i++ {
		g.stmt(0)
	}
	// Make sure every run produces some output.
	fmt.Fprintf(&g.b, "\tputc('0' + ((%s) & 63));\n", g.expr(2))
	g.b.WriteString("}\n")
	return g.b.String()
}

// scalarLV returns a random assignable scalar (local or global).
func (g *progGen) scalarLV() string {
	pool := append(append([]string{}, g.scalars...), g.locals...)
	return g.r.pick(pool)
}

// indexLV returns an in-bounds array element lvalue.
func (g *progGen) indexLV(depth int) string {
	arr := g.r.pick(g.arrays)
	return fmt.Sprintf("%s[(%s) & 7]", arr, g.expr(depth))
}

var binOps = []string{"+", "-", "*", "&", "|", "^", "<", "<=", ">", ">=", "==", "!=", "<<", ">>"}

// expr emits a random expression of bounded depth (calls allowed).
func (g *progGen) expr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.r.intn(10) {
	case 0, 1, 2:
		return g.atom()
	case 3:
		op := g.r.pick([]string{"-", "~", "!"})
		return fmt.Sprintf("%s(%s)", op, g.expr(depth-1))
	case 4:
		// Guarded division: divisor forced odd (nonzero).
		op := g.r.pick([]string{"/", "%"})
		return fmt.Sprintf("(%s) %s ((%s) | 1)", g.expr(depth-1), op, g.expr(depth-1))
	case 5:
		op := g.r.pick([]string{"&&", "||"})
		return fmt.Sprintf("(%s) %s (%s)", g.expr(depth-1), op, g.expr(depth-1))
	case 6:
		if len(g.auxFuncs) > 0 {
			name := g.r.pick(g.auxFuncs)
			args := make([]string, g.auxArity[name])
			for i := range args {
				args[i] = g.expr(depth - 1)
			}
			return fmt.Sprintf("%s(%s)", name, strings.Join(args, ", "))
		}
		fallthrough
	case 7:
		return g.indexLV(depth - 1)
	default:
		op := g.r.pick(binOps)
		// Bounded shift amounts keep both implementations in the masked
		// range (they mask identically, but small shifts make values
		// comparable across more operators).
		if op == "<<" || op == ">>" {
			return fmt.Sprintf("(%s) %s %d", g.expr(depth-1), op, g.r.intn(8))
		}
		return fmt.Sprintf("(%s) %s (%s)", g.expr(depth-1), op, g.expr(depth-1))
	}
}

// exprNoCall avoids function calls (for helper bodies).
func (g *progGen) exprNoCall(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.r.intn(6) {
	case 0:
		return g.atom()
	case 1:
		return fmt.Sprintf("-(%s)", g.exprNoCall(depth-1))
	case 2:
		return g.indexNoCall(depth - 1)
	default:
		op := g.r.pick(binOps)
		if op == "<<" || op == ">>" {
			return fmt.Sprintf("(%s) %s %d", g.exprNoCall(depth-1), op, g.r.intn(8))
		}
		return fmt.Sprintf("(%s) %s (%s)", g.exprNoCall(depth-1), op, g.exprNoCall(depth-1))
	}
}

func (g *progGen) indexNoCall(depth int) string {
	arr := g.r.pick(g.arrays)
	return fmt.Sprintf("%s[(%s) & 7]", arr, g.exprNoCall(depth))
}

func (g *progGen) atom() string {
	switch g.r.intn(5) {
	case 0:
		return fmt.Sprintf("%d", g.r.intn(200)-100)
	case 1:
		if len(g.locals) > 0 {
			return g.r.pick(g.locals)
		}
		return g.r.pick(g.scalars)
	case 2:
		return g.r.pick(g.scalars)
	case 3:
		return "getc()"
	default:
		return fmt.Sprintf("'%c'", byte('a'+g.r.intn(26)))
	}
}

var assignOps = []string{"=", "+=", "-=", "*=", "&=", "|=", "^="}

func (g *progGen) indent(depth int) string { return strings.Repeat("\t", depth+1) }

// simpleStmtNoCall emits an assignment without calls (helper bodies).
func (g *progGen) simpleStmtNoCall(depth int) {
	if len(g.arrays) > 0 && g.r.intn(2) == 0 {
		fmt.Fprintf(&g.b, "%s%s %s %s;\n", g.indent(depth),
			g.indexNoCall(1), g.r.pick(assignOps), g.exprNoCall(1))
		return
	}
	lv := g.r.pick(g.locals)
	fmt.Fprintf(&g.b, "%s%s %s %s;\n", g.indent(depth), lv, g.r.pick(assignOps), g.exprNoCall(1))
}

// stmt emits a random statement at the given nesting depth.
func (g *progGen) stmt(depth int) {
	ind := g.indent(depth)
	if depth > 2 {
		fmt.Fprintf(&g.b, "%s%s %s %s;\n", ind, g.scalarLV(), g.r.pick(assignOps), g.expr(1))
		return
	}
	switch g.r.intn(10) {
	case 0, 1:
		fmt.Fprintf(&g.b, "%s%s %s %s;\n", ind, g.scalarLV(), g.r.pick(assignOps), g.expr(2))
	case 2:
		fmt.Fprintf(&g.b, "%s%s %s %s;\n", ind, g.indexLV(1), g.r.pick(assignOps), g.expr(2))
	case 3:
		fmt.Fprintf(&g.b, "%sputc((%s) & 255);\n", ind, g.expr(2))
	case 4:
		fmt.Fprintf(&g.b, "%sif (%s) {\n", ind, g.expr(2))
		g.stmt(depth + 1)
		if g.r.intn(2) == 0 {
			fmt.Fprintf(&g.b, "%s} else {\n", ind)
			g.stmt(depth + 1)
		}
		fmt.Fprintf(&g.b, "%s}\n", ind)
	case 5:
		// Counted while loop, guaranteed to terminate.
		g.loops++
		lv := fmt.Sprintf("w%d", g.loops)
		// The counter stays out of g.locals: nested statements must not be
		// able to assign it, or termination is lost.
		fmt.Fprintf(&g.b, "%svar %s = 0;\n", ind, lv)
		fmt.Fprintf(&g.b, "%swhile (%s < %d) {\n", ind, lv, 1+g.r.intn(6))
		fmt.Fprintf(&g.b, "%s\t%s += 1;\n", ind, lv)
		g.stmt(depth + 1)
		fmt.Fprintf(&g.b, "%s}\n", ind)
	case 6:
		g.loops++
		lv := fmt.Sprintf("w%d", g.loops)
		fmt.Fprintf(&g.b, "%svar %s;\n", ind, lv)
		fmt.Fprintf(&g.b, "%sfor (%s = 0; %s < %d; %s += 1) {\n", ind, lv, lv, 1+g.r.intn(5), lv)
		g.stmt(depth + 1)
		fmt.Fprintf(&g.b, "%s}\n", ind)
	case 7:
		fmt.Fprintf(&g.b, "%sswitch ((%s) & 3) {\n", ind, g.expr(2))
		for v := 0; v < 4; v++ {
			if g.r.intn(4) == 0 {
				continue
			}
			fmt.Fprintf(&g.b, "%scase %d:\n", ind, v)
			g.stmt(depth + 1)
			if g.r.intn(3) != 0 {
				fmt.Fprintf(&g.b, "%s\tbreak;\n", ind)
			}
		}
		fmt.Fprintf(&g.b, "%sdefault:\n", ind)
		g.stmt(depth + 1)
		fmt.Fprintf(&g.b, "%s}\n", ind)
	case 8:
		g.loops++
		lv := fmt.Sprintf("w%d", g.loops)
		fmt.Fprintf(&g.b, "%svar %s = 0;\n", ind, lv)
		fmt.Fprintf(&g.b, "%sdo {\n", ind)
		fmt.Fprintf(&g.b, "%s\t%s += 1;\n", ind, lv)
		g.stmt(depth + 1)
		fmt.Fprintf(&g.b, "%s} while (%s < %d);\n", ind, lv, 1+g.r.intn(4))
	default:
		fmt.Fprintf(&g.b, "%s%s %s %s;\n", ind, g.scalarLV(), g.r.pick(assignOps), g.expr(2))
	}
}

// runDifferential compares one random program across the reference
// interpreter, the plain compiled binary, the optimized binary, and the
// FS-transformed optimized binary.
func runDifferential(t *testing.T, seed uint64) {
	t.Helper()
	src := generateProgram(seed)

	file, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("seed %d: generated invalid program: %v\n%s", seed, err, src)
	}
	ref, err := lang.NewInterp(file)
	if err != nil {
		t.Fatalf("seed %d: interp: %v", seed, err)
	}
	prog, err := compile.Compile(src)
	if err != nil {
		t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
	}
	inlined, err := compile.CompileOpts(compile.Options{Inline: true}, src)
	if err != nil {
		t.Fatalf("seed %d: inline compile: %v\n%s", seed, err, src)
	}
	optProg, err := opt.Optimize(inlined)
	if err != nil {
		t.Fatalf("seed %d: optimize: %v", seed, err)
	}

	// A few inputs per program.
	inputs := [][]byte{nil, []byte("abc"), []byte{0, 255, 7, 9, 200, 13}}
	prof := profile.New()
	col := &profile.Collector{P: prof}
	for _, in := range inputs {
		want, err := ref.Run(in, 1<<22)
		if err != nil {
			t.Fatalf("seed %d: reference: %v\n%s", seed, err, src)
		}
		got, err := vm.Run(prog, in, nil, vm.Config{})
		if err != nil {
			t.Fatalf("seed %d: vm: %v\n%s", seed, err, src)
		}
		if !bytes.Equal(want, got.Output) {
			t.Fatalf("seed %d: compiled output %q != reference %q\n%s",
				seed, got.Output, want, src)
		}
		gotInl, err := vm.Run(inlined, in, nil, vm.Config{})
		if err != nil {
			t.Fatalf("seed %d: inlined vm: %v\n%s", seed, err, src)
		}
		if !bytes.Equal(want, gotInl.Output) {
			t.Fatalf("seed %d: inlined output %q != reference %q\n%s",
				seed, gotInl.Output, want, src)
		}
		gotOpt, err := vm.Run(optProg, in, col.Hook(), vm.Config{})
		if err != nil {
			t.Fatalf("seed %d: optimized vm: %v\n%s", seed, err, src)
		}
		if !bytes.Equal(want, gotOpt.Output) {
			t.Fatalf("seed %d: optimized output %q != reference %q\n%s",
				seed, gotOpt.Output, want, src)
		}
		prof.Runs++
	}
	res, err := fs.Transform(optProg, prof, 1+int(seed%4))
	if err != nil {
		t.Fatalf("seed %d: transform: %v", seed, err)
	}
	for _, in := range inputs {
		want, _ := ref.Run(in, 1<<22)
		got, err := vm.Run(res.Prog, in, nil, vm.Config{})
		if err != nil {
			t.Fatalf("seed %d: transformed vm: %v\n%s", seed, err, src)
		}
		if !bytes.Equal(want, got.Output) {
			t.Fatalf("seed %d: transformed output %q != reference %q\n%s",
				seed, got.Output, want, src)
		}
	}
}

func TestDifferentialRandomPrograms(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 25
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		runDifferential(t, seed*0x9e37)
	}
}

func TestGeneratedProgramsParse(t *testing.T) {
	for seed := uint64(1); seed < 40; seed++ {
		src := generateProgram(seed * 7777)
		if _, err := lang.Parse(src); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}
