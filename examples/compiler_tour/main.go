// Compiler tour: watch the Forward Semantic work on a small program —
// profile-weighted trace selection, branch inversion, likely bits, and
// forward-slot filling — by diffing the disassembly before and after, the
// transformation of the paper's Figure 2.
package main

import (
	"fmt"
	"log"
	"strings"

	"branchcost"
	"branchcost/internal/fs"
	"branchcost/internal/isa"
)

// A loop with a heavily biased internal branch: the hot path (digits) stays
// on the trace; the cold path (rare escape character) leaves it.
const src = `
var digits; var escapes; var others;
func main() {
	var c;
	c = getc();
	while (c != -1) {
		if (c >= '0' && c <= '9') {
			digits += 1;
		} else if (c == '\\') {
			escapes += 1;
		} else {
			others += 1;
		}
		c = getc();
	}
	putc('0' + digits % 10);
	putc('0' + escapes % 10);
	putc('0' + others % 10);
}
`

func main() {
	prog, err := branchcost.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	// Mostly digits, the occasional other, one escape.
	inputs := [][]byte{
		[]byte("123456789012345678901234567890 4567\\89012345"),
		[]byte("99999999999999999999 888888888877777"),
	}
	prof, err := branchcost.CollectProfile(prog, inputs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== original program ==")
	fmt.Print(annotate(prog, prog))

	// Show the trace structure the profile induces.
	g, err := fs.BuildCFG(prog, prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== traces (by weight) ==")
	for i, t := range fs.SelectTraces(g) {
		var blocks []string
		for _, b := range t.Blocks {
			blocks = append(blocks, fmt.Sprintf("[%d,%d)", b.Start, b.End))
		}
		fmt.Printf("trace %d (weight %d): %s\n", i, t.Weight, strings.Join(blocks, " -> "))
	}

	res, err := branchcost.Transform(prog, prof, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== after the Forward Semantic (k+l = 2) ==\n")
	fmt.Printf("%d -> %d instructions (+%.1f%%), %d likely branches got slots, %d fixup jumps\n\n",
		res.OrigSize, res.NewSize, 100*res.CodeGrowth(), res.LikelyBranches, res.FixupJumps)
	fmt.Print(annotate(res.Prog, prog))

	// Prove semantic preservation on a fresh input.
	in := []byte("42\\x17 hello 9")
	a, err := branchcost.Run(prog, in, nil, branchcost.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	b, err := branchcost.Run(res.Prog, in, nil, branchcost.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noriginal output:    %q\ntransformed output: %q\nidentical: %v\n",
		a.Output, b.Output, string(a.Output) == string(b.Output))
}

// annotate disassembles p, marking forward slots (~) and likely branches.
func annotate(p, orig *branchcost.Program) string {
	var sb strings.Builder
	for i, in := range p.Code {
		mark := "  "
		if in.IsSlot {
			mark = " ~"
		}
		extra := ""
		if in.Op.IsCondBranch() && in.Likely {
			extra = "   <- likely-taken"
		}
		if in.Slots > 0 {
			extra += fmt.Sprintf("   (%d forward slots follow)", in.Slots)
		}
		if int(in.ID) >= len(orig.Code) {
			extra += "   (synthetic fixup)"
		}
		fmt.Fprintf(&sb, "%4d%s %-34s%s\n", i, mark, in.String(), extra)
		_ = isa.NOP
	}
	return sb.String()
}
