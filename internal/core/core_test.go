package core_test

import (
	"math"
	"testing"

	"branchcost/internal/compile"
	"branchcost/internal/core"
	"branchcost/internal/pipeline"
	"branchcost/internal/predict"
	"branchcost/internal/workloads"
)

const testSrc = `
var hist[4];
func main() {
	var c;
	c = getc();
	while (c != -1) {
		if (c >= 'a') { hist[0] += 1; }
		else if (c >= 'A') { hist[1] += 1; }
		else if (c >= '0') { hist[2] += 1; }
		else { hist[3] += 1; }
		c = getc();
	}
	putc('0' + hist[0] % 10);
	putc('0' + hist[1] % 10);
	putc('0' + hist[2] % 10);
	putc('0' + hist[3] % 10);
}`

var testInputs = [][]byte{
	[]byte("hello WORLD 123!"),
	[]byte("aAbB12..."),
	[]byte(""),
}

func TestEvaluateBasic(t *testing.T) {
	prog, err := compile.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.Evaluate("t", prog, testInputs, testInputs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Profile.Runs != len(testInputs) {
		t.Fatalf("runs = %d", e.Profile.Runs)
	}
	if e.Summary.Branches == 0 || e.Summary.Steps == 0 {
		t.Fatal("empty summary")
	}
	// All three schemes evaluated the same branch count.
	if e.SBTB().Stats.Branches != e.CBTB().Stats.Branches ||
		e.SBTB().Stats.Branches != e.FS().Stats.Branches {
		t.Fatalf("branch streams differ: %d / %d / %d",
			e.SBTB().Stats.Branches, e.CBTB().Stats.Branches, e.FS().Stats.Branches)
	}
	// Measured A_FS equals the analytic value on self-profiled inputs.
	if d := e.FS().Stats.Accuracy() - e.AnalyticFS; math.Abs(d) > 1e-12 {
		t.Fatalf("A_FS measured %v != analytic %v", e.FS().Stats.Accuracy(), e.AnalyticFS)
	}
	// The recorded trace matches the scored stream.
	if e.Trace == nil || int64(e.Trace.Len()) != e.SBTB().Stats.Branches {
		t.Fatalf("trace length mismatch: %+v vs %d branches", e.Trace, e.SBTB().Stats.Branches)
	}
	if e.FSResult == nil || e.FSResult.SlotCount != 2 {
		t.Fatalf("default slot count wrong: %+v", e.FSResult)
	}
}

func TestConfigDefaults(t *testing.T) {
	prog, err := compile.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	// A partial config keeps paper defaults for the rest.
	e, err := core.Evaluate("t", prog, testInputs, testInputs, core.Config{EvalSlots: core.Ptr(5)})
	if err != nil {
		t.Fatal(err)
	}
	if e.FSResult.SlotCount != 5 {
		t.Fatalf("slot override ignored: %d", e.FSResult.SlotCount)
	}
}

func TestZeroCounterThresholdExpressible(t *testing.T) {
	prog, err := compile.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 0 (predict taken for any cached branch) is a meaningful
	// sweep point; the nil/pointer rule must distinguish it from "unset".
	zero, err := core.Evaluate("t", prog, testInputs, testInputs,
		core.Config{CounterThreshold: core.Ptr[uint8](0)})
	if err != nil {
		t.Fatal(err)
	}
	dflt, err := core.Evaluate("t", prog, testInputs, testInputs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if zero.CBTB().Stats == dflt.CBTB().Stats {
		t.Fatal("CounterThreshold: 0 was silently replaced by the default")
	}
	c := (core.Config{}).Configs().Resolved("cbtb").(predict.CBTBConfig)
	if got := c.ThresholdValue(); got != 2 {
		t.Fatalf("default threshold = %d, want 2", got)
	}
	cfg := core.Config{CounterThreshold: core.Ptr[uint8](0)}
	c = cfg.Configs().Resolved("cbtb").(predict.CBTBConfig)
	if got := c.ThresholdValue(); got != 0 {
		t.Fatalf("explicit zero threshold resolved to %d", got)
	}
}

func TestSchemeListAndRegistry(t *testing.T) {
	prog, err := compile.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.Evaluate("t", prog, testInputs, testInputs,
		core.Config{Schemes: []string{"always-not-taken", "btfnt", "sbtb"}})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"always-not-taken", "btfnt", "sbtb"}; len(e.Order) != 3 ||
		e.Order[0] != want[0] || e.Order[1] != want[1] || e.Order[2] != want[2] {
		t.Fatalf("order = %v, want %v", e.Order, want)
	}
	if e.FSResult != nil {
		t.Fatal("transform ran without a transformed scheme")
	}
	for _, n := range e.Order {
		if e.Scheme(n).Stats.Branches == 0 {
			t.Fatalf("scheme %s scored no branches", n)
		}
	}
	if _, err := core.Evaluate("t", prog, testInputs, testInputs,
		core.Config{Schemes: []string{"no-such-scheme"}}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := core.Evaluate("t", prog, testInputs, testInputs,
		core.Config{Schemes: []string{"sbtb", "sbtb"}}); err == nil {
		t.Fatal("duplicate scheme accepted")
	}
}

func TestCostHelper(t *testing.T) {
	prog, err := compile.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.Evaluate("t", prog, testInputs, testInputs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.Config{K: 1, LBar: 1, MBar: 1}
	s, c, f := e.Cost(p)
	for _, v := range []float64{s, c, f} {
		if v < 1 || v > p.Penalty() {
			t.Fatalf("cost %v outside [1, penalty]", v)
		}
	}
	if got := p.Cost(e.FS().Stats.Accuracy()); got != f {
		t.Fatalf("Cost helper inconsistent: %v != %v", got, f)
	}
}

func TestCycleSimAttachment(t *testing.T) {
	prog, err := compile.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	sim := pipeline.NewCycleSim(1, 1, 2)
	e, err := core.Evaluate("t", prog, testInputs, testInputs, core.Config{CycleSim: sim})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []core.SchemeResult{e.SBTB(), e.CBTB(), e.FS()} {
		if sc.Cycle == nil {
			t.Fatal("cycle sim not attached")
		}
		if sc.Cycle.Branches != sc.Stats.Branches {
			t.Fatalf("cycle sim branches %d != stats %d", sc.Cycle.Branches, sc.Stats.Branches)
		}
		// Exact analytic agreement.
		sim, model := sc.Cycle.CostPerBranch(), sc.Cycle.EffectiveConfig().Cost(sc.Stats.Accuracy())
		if math.Abs(sim-model) > 1e-9 {
			t.Fatalf("cycle %v != model %v", sim, model)
		}
	}
	// The template simulator itself must stay untouched.
	if sim.Branches != 0 {
		t.Fatal("config template mutated")
	}
}

func TestFlushEveryDegradesHardwareOnly(t *testing.T) {
	b, err := workloads.ByName("wc")
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.EvaluateBenchmark(b, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	flushed, err := core.EvaluateBenchmark(b, core.Config{FlushEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	if flushed.SBTB().Stats.Accuracy() >= base.SBTB().Stats.Accuracy() {
		t.Errorf("SBTB did not degrade under flushing: %.4f >= %.4f",
			flushed.SBTB().Stats.Accuracy(), base.SBTB().Stats.Accuracy())
	}
	if flushed.FS().Stats.Accuracy() != base.FS().Stats.Accuracy() {
		t.Errorf("FS changed under flushing: %.6f != %.6f",
			flushed.FS().Stats.Accuracy(), base.FS().Stats.Accuracy())
	}
}

func TestTrainTestSplit(t *testing.T) {
	prog, err := compile.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	train := [][]byte{[]byte("aaaa bbb 11")}
	test := [][]byte{[]byte("ZZZZ !!! ??")}
	e, err := core.Evaluate("t", prog, train, test, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The profile reflects training inputs only.
	if e.Profile.Runs != 1 {
		t.Fatalf("profile runs = %d", e.Profile.Runs)
	}
	// Accuracy is measured on test inputs, where training-derived likely
	// bits can be wrong — the measured value may differ from the analytic
	// self-accuracy.
	if e.FS().Stats.Branches == 0 {
		t.Fatal("no test-run branches scored")
	}
}

func TestEvaluateBenchmarkCached(t *testing.T) {
	b, err := workloads.ByName("tee")
	if err != nil {
		t.Fatal(err)
	}
	e1, err := core.EvaluateBenchmark(b, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := core.EvaluateBenchmark(b, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Determinism end to end.
	if e1.FS().Stats != e2.FS().Stats || e1.SBTB().Stats != e2.SBTB().Stats {
		t.Fatal("evaluation is nondeterministic")
	}
}
