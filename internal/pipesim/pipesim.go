// Package pipesim is a stage-level simulator of the paper's pipelined
// microarchitecture, generalized to fetch width W (the paper's machine is
// W = 1; the superscalar machines that followed it made branch cost
// relatively worse, which this model quantifies).
//
// The pipeline is the paper's §2.1 structure: a next-address select stage,
// K instruction-memory stages, L decode stages, M execute stages, and a
// state-update stage, in order, with no structural or data hazards (the
// paper folds data interlocks into the m̄ average). Fetch delivers up to W
// sequential instructions per cycle; a fetch group ends early at any taken
// control transfer (the redirect changes the fetch address — the classic
// taken-branch fetch break). A mispredicted branch redirects fetch when it
// resolves — end of decode for unconditional branches, end of execute for
// conditional ones — and the wrong-path instructions fetched in between are
// squashed. The redirect is forwarded during the resolving stage's final
// cycle, so a mispredicted conditional branch costs exactly K+L+M cycles
// end to end: the paper's penalty P, making the W = 1 simulation agree with
// the analytic model cost = A + P(1−A) exactly.
package pipesim

import (
	"fmt"

	"branchcost/internal/isa"
	"branchcost/internal/predict"
	"branchcost/internal/vm"
)

// Sim accumulates cycle counts for one run. Drive it by passing its Hook
// into vm.Run together with a predictor.
type Sim struct {
	Width   int // fetch width W (instructions per cycle), >= 1
	K, L, M int

	// Results.
	Insts       int64 // right-path instructions fetched
	Branches    int64
	Mispredicts int64
	Squashed    int64 // wrong-path fetch slots issued then discarded
	GroupBreaks int64 // fetch groups ended early by a taken branch

	pred predict.Predictor

	// fetch state: cycle currently being filled and slots used in it.
	curCycle  int64
	slotsUsed int
	// drainCycle is the cycle the last instruction leaves the pipe.
	drainCycle int64
}

// New returns a simulator using the given predictor.
func New(width, k, l, m int, pred predict.Predictor) *Sim {
	if width < 1 {
		panic(fmt.Sprintf("pipesim: width %d < 1", width))
	}
	return &Sim{Width: width, K: k, L: l, M: m, pred: pred, curCycle: 1}
}

// depth is the pipeline length after the select stage.
func (s *Sim) depth() int64 { return int64(s.K + s.L + s.M) }

// fetchOne accounts one right-path instruction entering the pipe and
// returns the cycle it was fetched in.
func (s *Sim) fetchOne() int64 {
	if s.slotsUsed >= s.Width {
		s.curCycle++
		s.slotsUsed = 0
	}
	s.slotsUsed++
	s.Insts++
	if done := s.curCycle + 1 + s.depth(); done > s.drainCycle {
		s.drainCycle = done
	}
	return s.curCycle
}

// redirect moves fetch to a new address at the given cycle: the current
// group ends and the next instruction starts a fresh group.
func (s *Sim) redirect(at int64) {
	if at <= s.curCycle {
		at = s.curCycle + 1
	}
	s.curCycle = at
	s.slotsUsed = 0
}

// Hook returns the vm.BranchFunc driving the simulation. Non-branch
// instructions are accounted through Step; wire both:
//
//	sim := pipesim.New(4, 1, 2, 2, pred)
//	cfg := vm.Config{Trace: sim.Step}
//	vm.Run(prog, input, sim.Hook(), cfg)
func (s *Sim) Hook() vm.BranchFunc {
	return func(ev vm.BranchEvent) {
		if !ev.Op.IsBranch() {
			return // CALL/RET redirect fetch too, but are not studied here
		}
		s.Branch(ev)
	}
}

// Step accounts one executed instruction's fetch (called from the VM's
// trace hook, which fires for every instruction including branches; the
// branch hook then adds the branch-specific behaviour).
func (s *Sim) Step(pos int32) {
	s.fetchOne()
}

// Branch applies branch semantics for an instruction already counted by
// Step: prediction, group breaks, and misprediction redirects.
func (s *Sim) Branch(ev vm.BranchEvent) {
	s.Branches++
	p := s.pred.Predict(ev)
	correct := p.Taken == ev.Taken && (!p.Taken || p.Target == ev.Target)
	s.pred.Update(ev)

	fetchCycle := s.curCycle // the group this branch was fetched in

	if correct {
		if ev.Taken {
			// Correctly predicted taken: the target comes from the BTB or
			// the forward slots, but the fetch address still changes — the
			// group ends.
			s.GroupBreaks++
			s.redirect(fetchCycle + 1)
		}
		return
	}

	s.Mispredicts++
	// Resolution: end of decode for unconditional, end of execute for
	// conditional; the redirect forwards during the resolving stage's last
	// cycle, so the next right-path fetch starts penalty cycles after the
	// branch's own fetch cycle.
	penalty := int64(s.K + s.L)
	if ev.Op.IsCondBranch() {
		penalty += int64(s.M)
	}
	// Wrong-path slots issued while waiting: full width for each cycle
	// between the branch's group and the redirect, minus the slot the
	// branch itself used.
	wrongCycles := penalty - 1
	if wrongCycles > 0 {
		s.Squashed += wrongCycles*int64(s.Width) + int64(s.Width-s.slotsUsed)
	}
	s.redirect(fetchCycle + penalty)
}

// Cycles returns the total cycle count (through pipeline drain).
func (s *Sim) Cycles() int64 {
	if s.drainCycle > s.curCycle {
		return s.drainCycle
	}
	return s.curCycle
}

// FetchCycles returns the cycles spent fetching (no drain), the
// denominator for utilization.
func (s *Sim) FetchCycles() int64 { return s.curCycle }

// CPI is cycles per right-path instruction.
func (s *Sim) CPI() float64 {
	if s.Insts == 0 {
		return 0
	}
	return float64(s.Cycles()) / float64(s.Insts)
}

// IPC is the inverse of CPI.
func (s *Sim) IPC() float64 {
	c := s.CPI()
	if c == 0 {
		return 0
	}
	return 1 / c
}

// CostPerBranch is the branch cost in the paper's currency: the cycles
// beyond the no-branch ideal (Insts/Width), per branch, plus the branch's
// own issue share. At W = 1 it equals the analytic cost A + P(1−A) up to
// the taken-branch group-break term (which is zero at W = 1).
func (s *Sim) CostPerBranch() float64 {
	if s.Branches == 0 {
		return 0
	}
	ideal := (s.Insts + int64(s.Width) - 1) / int64(s.Width)
	extra := float64(s.FetchCycles() - ideal)
	return 1 + extra/float64(s.Branches)
}

// FetchUtilization is the fraction of issued fetch slots holding useful
// (right-path) instructions.
func (s *Sim) FetchUtilization() float64 {
	slots := s.FetchCycles() * int64(s.Width)
	if slots == 0 {
		return 0
	}
	u := float64(s.Insts) / float64(slots)
	if u > 1 {
		u = 1
	}
	return u
}

var _ = isa.NOP // keep the isa import for documentation references
