package btb_test

import (
	"testing"

	"branchcost/internal/btb"
	"branchcost/internal/oracle"
	"branchcost/internal/tracefile"
	"branchcost/internal/workloads"
)

// TestBuffersMatchOracleOnBenchmarks drives the production buffers against
// their deliberately naive oracle twins over real benchmark traces — not
// just synthetic fuzz — at the paper geometry and at set-associative shapes
// that exercise the production buffer's set indexing and O(1) eviction
// paths, which the linear-scan oracle does not share.
func TestBuffersMatchOracleOnBenchmarks(t *testing.T) {
	geometries := []struct {
		name          string
		entries, ways int
	}{
		{"paper-256-full", 256, 256},
		{"64-4way", 64, 4},
		{"32-1way", 32, 1},
		{"16-2way", 16, 2},
	}
	for _, bench := range []string{"cmp", "wc"} {
		b, err := workloads.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		p, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := tracefile.Record(p, b.Inputs())
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range geometries {
			stats, div := oracle.CheckTrace("sbtb", tr,
				btb.NewSBTB(g.entries, g.ways),
				oracle.NewRefSBTB(g.entries, g.ways))
			if div != nil {
				t.Errorf("%s/%s: %v", bench, g.name, div)
			}
			if stats.Branches != int64(tr.Len()) {
				t.Errorf("%s/%s: sbtb scored %d of %d events", bench, g.name, stats.Branches, tr.Len())
			}
			stats, div = oracle.CheckTrace("cbtb", tr,
				btb.NewCBTB(g.entries, g.ways, 2, 2),
				oracle.NewRefCBTB(g.entries, g.ways, 2, 2))
			if div != nil {
				t.Errorf("%s/%s: %v", bench, g.name, div)
			}
			if err := oracle.CheckStats(stats); err != nil {
				t.Errorf("%s/%s: cbtb: %v", bench, g.name, err)
			}
			// Two-level: the geometry under test becomes the L2, with a
			// deliberately tiny L1 so promotion and L1 eviction churn.
			stats, div = oracle.CheckTrace("btb2l", tr,
				btb.NewTwoLevel(8, 2, g.entries, g.ways, 2, 2),
				oracle.NewRefTwoLevel(8, 2, g.entries, g.ways, 2, 2))
			if div != nil {
				t.Errorf("%s/%s: btb2l: %v", bench, g.name, div)
			}
			if err := oracle.CheckStats(stats); err != nil {
				t.Errorf("%s/%s: btb2l: %v", bench, g.name, err)
			}
		}
	}
}
