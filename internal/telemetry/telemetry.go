// Package telemetry is the engine's instrumentation substrate: named
// counters, gauges, and log2-bucket histograms, hierarchical timed spans,
// and a structured logger, all gathered in a Set that travels through
// context.Context (or explicit wiring, for layers without one).
//
// The package is deliberately dependency-free within the repository — it
// imports only the standard library — so every layer down to the VM can be
// instrumented without import cycles. It is also near-zero-cost when
// disabled: a nil *Set hands out nil *Counter/*Gauge/*Span values whose
// methods are nil-receiver no-ops, so instrumented hot paths (the trace
// replay inner loop records one counter increment per branch event) pay
// only an inlined nil check when telemetry is off. The disabled path is
// benchmark-asserted at ≤2ns/op (see bench_test.go and the replay overhead
// test in internal/tracefile).
//
// Metric names are dotted paths namespaced by layer: "vm.runs",
// "tracefile.replay.events", "corpus.hits", "scheme.cbtb.misses",
// "suite.coalesced" (see ValidMetricName for the exact contract). Snapshot
// serializes the whole registry — counters, gauges, histograms, and the
// completed span trees — as JSON; the same snapshot is exported over expvar
// and the -pprof debug server (debug.go, which also serves the Prometheus
// text format at /metrics and Chrome trace events at /debug/trace-events),
// and embedded in run manifests (internal/core).
package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil *Counter is
// valid and discards updates, which is the disabled-telemetry fast path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe for concurrent use; a no-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (queue depth, active workers).
// The nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// RecordMax raises the gauge to n if n exceeds its current value — a
// high-water mark (peak worker-pool utilization).
func (g *Gauge) RecordMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Set is one telemetry registry: the counters, gauges, span trees, and
// logger of one process (or one test). The nil *Set is the disabled state:
// every method is a cheap no-op and every accessor returns the corresponding
// nil instrument.
type Set struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	spans      []*SpanRecord // completed or in-flight root spans

	logger atomic.Pointer[loggerBox]
}

// New returns an enabled, empty Set with no logger (Log returns the discard
// logger until SetLogger is called).
func New() *Set {
	return &Set{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. On a nil Set
// it returns nil, which discards all updates. Hot paths should look a
// counter up once and hold the pointer.
func (s *Set) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil Set).
func (s *Set) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use (nil on a
// nil Set, which discards all observations).
func (s *Set) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.histograms[name]
	if !ok {
		h = &Histogram{}
		s.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time JSON-serializable copy of a Set: counter,
// gauge, and histogram values plus the recorded span trees (spans still
// running report a zero duration).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []*SpanRecord                `json:"spans,omitempty"`
}

// Snapshot copies the current state. Safe to call concurrently with
// updates; the returned structure is private to the caller.
func (s *Set) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{}
	if len(s.counters) > 0 {
		snap.Counters = make(map[string]int64, len(s.counters))
		for name, c := range s.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(s.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(s.gauges))
		for name, g := range s.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(s.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(s.histograms))
		for name, h := range s.histograms {
			snap.Histograms[name] = h.snapshot()
		}
	}
	snap.Spans = cloneSpans(s.spans)
	return snap
}

type ctxKey int

const (
	setKey ctxKey = iota
	spanKey
)

// NewContext returns ctx carrying the Set; everything downstream that
// accepts a context (core evaluation, corpus access, trace replay) picks it
// up from there.
func NewContext(ctx context.Context, s *Set) context.Context {
	return context.WithValue(ctx, setKey, s)
}

// FromContext returns the Set carried by ctx, or nil when telemetry is
// disabled. The nil result is directly usable: all Set methods no-op on nil.
func FromContext(ctx context.Context) *Set {
	s, _ := ctx.Value(setKey).(*Set)
	return s
}
