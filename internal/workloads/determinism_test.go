package workloads

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"branchcost/internal/compile"
	"branchcost/internal/tracefile"
	"branchcost/internal/vm"
)

// The whole experimental method rests on record-once/replay-many: a
// benchmark's inputs, program bytes and recorded trace must be pure
// functions of (benchmark, run). These tests regress that at every layer —
// generator output, compiled program, serialized trace.

// TestInputDeterminism re-derives every profiling input and demands
// byte-identity. This is the seed contract: Input(run) may keep no state
// between calls and may consult nothing but its seeded rng.
func TestInputDeterminism(t *testing.T) {
	for _, b := range Everything() {
		for run := 0; run < b.Runs; run++ {
			a, c := b.Input(run), b.Input(run)
			if !bytes.Equal(a, c) {
				t.Errorf("%s run %d: Input not deterministic (%d vs %d bytes)",
					b.Name, run, len(a), len(c))
			}
		}
	}
}

// TestGeneratorDeterminism pins the generator functions directly: the same
// seed twice gives identical bytes, and neighbouring seeds give different
// bytes (i.e. the seed actually reaches the output).
func TestGeneratorDeterminism(t *testing.T) {
	gens := []struct {
		name string
		gen  func(r *rng) []byte
	}{
		{"c-program", func(r *rng) []byte { return genCProgram(r, 300) }},
		{"text-file", func(r *rng) []byte { return genTextFile(r, 200) }},
		{"lisp-program", func(r *rng) []byte { return genLispProgram(r, 150) }},
		{"awk-program", func(r *rng) []byte { return genAwkProgram(r, 100) }},
		{"mutate", func(r *rng) []byte { return mutate(r, []byte("the quick brown fox jumps over the lazy dog\n"), 6) }},
		{"bytecode", func(r *rng) []byte { return genBytecode(r) }},
		{"stress-source", func(r *rng) []byte { return []byte(StressSource(r, 96)) }},
		{"storm-source", func(r *rng) []byte { return []byte(StormSource(r, 5)) }},
		{"stress-input", func(r *rng) []byte { return StressInput(r, 500) }},
	}
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) {
			first := g.gen(newRNG(g.name, 1))
			again := g.gen(newRNG(g.name, 1))
			if !bytes.Equal(first, again) {
				t.Fatalf("same seed produced different bytes (%d vs %d)", len(first), len(again))
			}
			other := g.gen(newRNG(g.name, 2))
			if bytes.Equal(first, other) {
				t.Fatalf("different seeds produced identical bytes — seed not reaching output")
			}
		})
	}
}

// TestProgramDeterminism compiles every benchmark's sources twice from
// scratch (bypassing the Program() cache) and demands identical code —
// generated sources (btb-stress, ctx-storm) included.
func TestProgramDeterminism(t *testing.T) {
	for _, b := range Everything() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			first, err := compile.CompileOpts(compile.Options{Inline: true}, b.Sources...)
			if err != nil {
				t.Fatal(err)
			}
			again, err := compile.CompileOpts(compile.Options{Inline: true}, b.Sources...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first.Code, again.Code) {
				t.Fatal("recompilation produced different code")
			}
		})
	}
}

// TestTraceDeterminism records each modern class's run-0 trace twice and
// compares the serialized BCT2 bytes — bit identity, not just equal scores.
// The corpus is content-addressed, so any nondeterminism here would split
// one benchmark across corpus keys and silently double storage.
func TestTraceDeterminism(t *testing.T) {
	for _, b := range Modern() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := b.Program()
			if err != nil {
				t.Fatal(err)
			}
			serialize := func() []byte {
				tr, err := tracefile.Record(prog, [][]byte{b.Input(0)})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := tr.WriteTo(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			first, again := serialize(), serialize()
			if !bytes.Equal(first, again) {
				t.Fatalf("recorded traces differ: %d vs %d bytes", len(first), len(again))
			}
			if len(first) == 0 {
				t.Fatal("empty trace")
			}
		})
	}
}

// FuzzInterpBytecode drives the interp VM with arbitrary bytecode. The VM
// is guarded by construction (indices masked, unknown opcodes are nops,
// fuel bounds the dynamic count), so every byte string must run to a clean
// halt within a fixed host-step budget — no trap, no runaway.
func FuzzInterpBytecode(f *testing.F) {
	for run := 0; run < 3; run++ {
		f.Add(genBytecode(newRNG("interp", run)))
	}
	f.Add([]byte{})
	f.Add([]byte{bcJmp, 0, 0})                      // tight infinite loop: fuel must end it
	f.Add(bytes.Repeat([]byte{bcPush, 255}, 2000))  // stack pressure: masking must absorb it
	f.Add([]byte{bcJnz, 0xff, 0xff, bcJz, 0, 0xfe}) // out-of-range targets: masked

	prog, err := Interp.Program()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) > 4000 {
			code = code[:4000]
		}
		var in bytes.Buffer
		fmt.Fprintf(&in, "%d\n", len(code))
		in.Write(code)
		in.WriteString("20000\n")
		res, err := vm.Run(prog, in.Bytes(), nil, vm.Config{MaxSteps: 8_000_000})
		if err != nil {
			t.Fatalf("guarded interpreter trapped: %v", err)
		}
		if n := len(res.Output); n == 0 || res.Output[n-1] != '\n' {
			t.Fatalf("interpreter did not reach its halt marker (output %q...)", res.Output[:min(n, 20)])
		}
	})
}

// FuzzStressProgram generates BTB-stress programs across the (seed, sites)
// plane and asserts each compiles and runs to completion within a step
// budget — the generator must never emit source the compiler rejects
// (e.g. by exceeding the jump-table bound) or a program that wanders off.
func FuzzStressProgram(f *testing.F) {
	f.Add(uint64(1), 8)
	f.Add(uint64(2), 96)
	f.Add(uint64(3), 1024)
	f.Add(uint64(4), 0)
	f.Add(uint64(5), 1<<20) // silly-large: stressFuncs must clamp it
	f.Fuzz(func(t *testing.T, seed uint64, sites int) {
		if sites < 0 {
			sites = -sites
		}
		src := StressSource(&rng{s: seed}, sites)
		prog, err := compile.CompileOpts(compile.Options{Inline: true}, src)
		if err != nil {
			t.Fatalf("sites=%d: generated source does not compile: %v", sites, err)
		}
		res, err := vm.Run(prog, StressInput(&rng{s: seed ^ 0xabc}, 400), nil,
			vm.Config{MaxSteps: 40_000_000})
		if err != nil {
			t.Fatalf("sites=%d: %v", sites, err)
		}
		if len(res.Output) == 0 {
			t.Fatalf("sites=%d: no output", sites)
		}
	})
}

// FuzzStormProgram does the same across the (seed, procs) plane for the
// context-switch storm generator.
func FuzzStormProgram(f *testing.F) {
	f.Add(uint64(1), 2)
	f.Add(uint64(2), 8)
	f.Add(uint64(3), 64)
	f.Add(uint64(4), -5) // below range: StormSource must clamp
	f.Add(uint64(5), 999)
	f.Fuzz(func(t *testing.T, seed uint64, procs int) {
		src := StormSource(&rng{s: seed}, procs)
		prog, err := compile.CompileOpts(compile.Options{Inline: true}, src)
		if err != nil {
			t.Fatalf("procs=%d: generated source does not compile: %v", procs, err)
		}
		var in bytes.Buffer
		in.WriteString("24\n16\n")
		r := &rng{s: seed ^ 0x5a5a}
		for i := 0; i < 2048; i++ {
			in.WriteByte(byte(r.intn(256)))
		}
		res, err := vm.Run(prog, in.Bytes(), nil, vm.Config{MaxSteps: 40_000_000})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if len(res.Output) == 0 {
			t.Fatalf("procs=%d: no output", procs)
		}
	})
}
