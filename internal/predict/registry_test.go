package predict_test

import (
	"strings"
	"testing"

	_ "branchcost/internal/btb" // registers sbtb/cbtb
	"branchcost/internal/predict"
	"branchcost/internal/vm"
)

func TestRegistryBuiltins(t *testing.T) {
	names := predict.Names()
	want := map[string]bool{
		"always-taken": true, "always-not-taken": true, "btfnt": true,
		"opcode-bias": true, "fs": true, "sbtb": true, "cbtb": true,
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for n := range want {
		if !seen[n] {
			t.Errorf("built-in scheme %q not registered (have %v)", n, names)
		}
	}
	fs := predict.MustLookup("fs")
	if !fs.Transformed || !fs.NeedsContext {
		t.Errorf("fs flags wrong: %+v", fs)
	}
	for _, n := range []string{"sbtb", "cbtb", "always-not-taken"} {
		s := predict.MustLookup(n)
		if s.NeedsContext {
			t.Errorf("%s should be replayable without program context", n)
		}
		// Context-free schemes must construct from an empty context.
		if p := s.New(predict.SchemeContext{}); p == nil {
			t.Errorf("%s: nil predictor from empty context", n)
		}
	}
}

func TestRegistryParamsDefaulting(t *testing.T) {
	if got := (predict.Params{}).OrPaper(); got != predict.PaperParams {
		t.Fatalf("zero Params resolved to %+v", got)
	}
	custom := predict.Params{SBTBEntries: 16, SBTBAssoc: 4,
		CBTBEntries: 16, CBTBAssoc: 4, CounterBits: 1, CounterThreshold: 1}
	if got := custom.OrPaper(); got != custom {
		t.Fatalf("non-zero Params rewritten to %+v", got)
	}
	// A threshold of zero is expressible as long as the geometry is set.
	zeroTh := predict.Params{CBTBEntries: 64, CBTBAssoc: 64, CounterBits: 2,
		SBTBEntries: 64, SBTBAssoc: 64}
	p := predict.MustLookup("cbtb").New(predict.SchemeContext{Params: zeroTh})
	// Threshold 0 predicts taken even for a never-seen-taken branch once cached.
	p.Update(vm.BranchEvent{PC: 7, Taken: false})
	if pr := p.Predict(vm.BranchEvent{PC: 7}); !pr.Taken {
		t.Fatalf("threshold-0 CBTB predicted not-taken: %+v", pr)
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(label string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", label)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { predict.Register(predict.Scheme{New: func(predict.SchemeContext) predict.Predictor { return nil }}) })
	mustPanic("nil constructor", func() { predict.Register(predict.Scheme{Name: "x"}) })
	mustPanic("duplicate", func() {
		predict.Register(predict.Scheme{Name: "sbtb", New: func(predict.SchemeContext) predict.Predictor { return nil }})
	})
}

// TestRegisterSchemeRejectsDuplicate: a duplicate registration must fail
// with an error naming the scheme and leave the original registration —
// the one every table refers to — untouched.
func TestRegisterSchemeRejectsDuplicate(t *testing.T) {
	if err := predict.RegisterScheme(predict.Scheme{}); err == nil {
		t.Error("empty scheme accepted")
	}
	if err := predict.RegisterScheme(predict.Scheme{Name: "x"}); err == nil {
		t.Error("nil constructor accepted")
	}

	usurper := predict.Scheme{
		Name:        "sbtb",
		Description: "usurper",
		New:         func(predict.SchemeContext) predict.Predictor { return nil },
	}
	err := predict.RegisterScheme(usurper)
	if err == nil {
		t.Fatal("duplicate registration of sbtb accepted")
	}
	if !strings.Contains(err.Error(), "sbtb") {
		t.Errorf("duplicate error %q does not name the scheme", err)
	}

	// The original must have survived: same description, working constructor,
	// and exactly one "sbtb" in the registration order.
	got := predict.MustLookup("sbtb")
	if got.Description == usurper.Description {
		t.Fatal("duplicate registration overwrote the original scheme")
	}
	if p := got.New(predict.SchemeContext{}); p == nil || p.Name() != "sbtb" {
		t.Fatalf("original sbtb constructor broken after rejected duplicate: %v", p)
	}
	count := 0
	for _, n := range predict.Names() {
		if n == "sbtb" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("sbtb appears %d times in registration order", count)
	}
}
