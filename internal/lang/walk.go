package lang

// VisitExprs calls f for every expression in the statement, in a fixed
// left-to-right, outside-in order. The compiler and the reference
// interpreter both rely on this order to intern string literals
// identically, so the two memory layouts coincide.
func VisitExprs(s Stmt, f func(Expr)) {
	switch st := s.(type) {
	case nil:
	case *Block:
		for _, x := range st.Stmts {
			VisitExprs(x, f)
		}
	case *LocalDecl:
		visitExpr(st.Init, f)
	case *AssignStmt:
		visitExpr(st.LHS, f)
		visitExpr(st.RHS, f)
	case *ExprStmt:
		visitExpr(st.X, f)
	case *IfStmt:
		visitExpr(st.Cond, f)
		VisitExprs(st.Then, f)
		VisitExprs(st.Else, f)
	case *WhileStmt:
		visitExpr(st.Cond, f)
		VisitExprs(st.Body, f)
	case *DoWhileStmt:
		VisitExprs(st.Body, f)
		visitExpr(st.Cond, f)
	case *ForStmt:
		VisitExprs(st.Init, f)
		visitExpr(st.Cond, f)
		VisitExprs(st.Post, f)
		VisitExprs(st.Body, f)
	case *SwitchStmt:
		visitExpr(st.Tag, f)
		for _, c := range st.Cases {
			for _, x := range c.Body {
				VisitExprs(x, f)
			}
		}
	case *ReturnStmt:
		visitExpr(st.X, f)
	case *BreakStmt, *ContinueStmt:
	}
}

func visitExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *IndexExpr:
		visitExpr(x.Base, f)
		visitExpr(x.Index, f)
	case *CallExpr:
		for _, a := range x.Args {
			visitExpr(a, f)
		}
	case *UnaryExpr:
		visitExpr(x.X, f)
	case *BinaryExpr:
		visitExpr(x.X, f)
		visitExpr(x.Y, f)
	}
}
