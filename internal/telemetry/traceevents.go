package telemetry

import (
	"encoding/json"
	"io"
)

// Chrome trace-event export: the Set's span trees rendered as "X" (complete)
// events in the Trace Event JSON format, so a run's phase structure —
// core.evaluate roots with profile/record/replay/fs.* children — opens
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Timestamps are microseconds relative to the earliest recorded span, taken
// from each span's wall-clock start; spans recorded without a start (older
// snapshots) are laid out sequentially after their previous sibling so the
// nesting still renders. Events are emitted in deterministic pre-order
// (roots in recording order), so identical snapshots export byte-identically.

// traceEvent is one Trace Event Format entry. Field order here is the JSON
// field order (encoding/json emits struct fields in declaration order),
// which the determinism golden test relies on.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteTraceEvents renders the Set's current span trees (see the package
// comment above). A nil Set writes an empty trace document.
func (s *Set) WriteTraceEvents(w io.Writer) error {
	return WriteTraceEventsSnapshot(w, s.Snapshot())
}

// WriteTraceEventsSnapshot renders a captured snapshot's span trees.
func WriteTraceEventsSnapshot(w io.Writer, snap Snapshot) error {
	base := int64(0)
	for _, r := range snap.Spans {
		if r.StartUnixNS > 0 && (base == 0 || r.StartUnixNS < base) {
			base = r.StartUnixNS
		}
	}
	var events []traceEvent
	var cursor int64 // synthetic timeline for spans without a recorded start
	for _, r := range snap.Spans {
		events = appendTraceEvents(events, r, base, &cursor)
	}
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// appendTraceEvents emits r and its children in pre-order. startNS tracks
// the synthetic cursor used when spans carry no wall-clock start: such a
// span begins where its previous sibling ended.
func appendTraceEvents(events []traceEvent, r *SpanRecord, base int64, cursor *int64) []traceEvent {
	start := *cursor
	if r.StartUnixNS > 0 {
		start = r.StartUnixNS - base
	}
	events = append(events, traceEvent{
		Name: r.Name, Cat: "span", Ph: "X",
		Ts:  float64(start) / 1e3,
		Dur: float64(r.DurationNS) / 1e3,
		Pid: 1, Tid: 1,
	})
	childCursor := start
	for _, c := range r.Children {
		events = appendTraceEvents(events, c, base, &childCursor)
	}
	*cursor = start + r.DurationNS
	return events
}
