package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"branchcost/internal/isa"
)

// Fingerprint is the compact branch-behaviour signature of a profiled
// program: the quantities that decide which prediction scheme a workload
// rewards or defeats. Two profiles of the same workload class — different
// input seeds, same generator — must produce fingerprints within a declared
// Tolerance of each other; that is the machine-checked contract every
// workload class (the paper's twelve and the modern adversarial classes)
// carries in its tests.
type Fingerprint struct {
	// Branches is the dynamic branch count the ratios below are over.
	Branches int64 `json:"branches"`

	// TakenRatio is the fraction of dynamic branches that were taken
	// (unconditional branches count as taken).
	TakenRatio float64 `json:"taken_ratio"`

	// CondTakenRatio is the taken fraction restricted to conditional
	// branches — the paper's Table 2 "taken" column.
	CondTakenRatio float64 `json:"cond_taken_ratio"`

	// IndirectShare is the fraction of dynamic branches that were indirect
	// jumps (JMPI — switch dispatch, the BTB-killing class).
	IndirectShare float64 `json:"indirect_share"`

	// PerOp counts dynamic executions per branch opcode, keyed by mnemonic.
	PerOp map[string]int64 `json:"per_op"`

	// Sites is the number of distinct static branch sites that executed —
	// the BTB working-set size.
	Sites int `json:"sites"`
}

// Fingerprint summarizes the profile into its branch-behaviour signature.
func (p *Profile) Fingerprint() Fingerprint {
	f := Fingerprint{PerOp: map[string]int64{}}
	var taken, condExec, condTaken, indirect int64
	for _, b := range p.Branches {
		f.Branches += b.Exec
		f.PerOp[b.Op.String()] += b.Exec
		taken += b.Taken
		if b.Op.IsCondBranch() {
			condExec += b.Exec
			condTaken += b.Taken
		}
		if b.Op == isa.JMPI {
			indirect += b.Exec
		}
		f.Sites++
	}
	if f.Branches > 0 {
		f.TakenRatio = float64(taken) / float64(f.Branches)
		f.IndirectShare = float64(indirect) / float64(f.Branches)
	}
	if condExec > 0 {
		f.CondTakenRatio = float64(condTaken) / float64(condExec)
	}
	return f
}

// Tolerance is the allowed band when comparing a measured fingerprint
// against a declared one. Ratios compare absolutely; Sites and the per-op
// mix compare relatively. Zero fields disable that check.
type Tolerance struct {
	// TakenRatio bounds |got − want| of TakenRatio and CondTakenRatio.
	TakenRatio float64
	// IndirectShare bounds |got − want| of IndirectShare.
	IndirectShare float64
	// SitesFrac bounds |got − want| / max(want, 1) of the distinct-site count.
	SitesFrac float64
	// OpShareFrac bounds, per opcode, the absolute difference of that
	// opcode's share of all dynamic branches.
	OpShareFrac float64
}

// opShare returns op's fraction of the fingerprint's dynamic branches.
func (f Fingerprint) opShare(op string) float64 {
	if f.Branches == 0 {
		return 0
	}
	return float64(f.PerOp[op]) / float64(f.Branches)
}

// Within checks the fingerprint against a declared one, reporting every
// violated band (nil when all hold). The declared fingerprint's PerOp map
// may be nil to skip the op-mix check.
func (f Fingerprint) Within(want Fingerprint, tol Tolerance) error {
	var bad []string
	abs := func(x float64) float64 { return math.Abs(x) }
	if tol.TakenRatio > 0 {
		if d := abs(f.TakenRatio - want.TakenRatio); d > tol.TakenRatio {
			bad = append(bad, fmt.Sprintf("taken ratio %.4f vs %.4f (|Δ|=%.4f > %.4f)",
				f.TakenRatio, want.TakenRatio, d, tol.TakenRatio))
		}
		if d := abs(f.CondTakenRatio - want.CondTakenRatio); d > tol.TakenRatio {
			bad = append(bad, fmt.Sprintf("cond taken ratio %.4f vs %.4f (|Δ|=%.4f > %.4f)",
				f.CondTakenRatio, want.CondTakenRatio, d, tol.TakenRatio))
		}
	}
	if tol.IndirectShare > 0 {
		if d := abs(f.IndirectShare - want.IndirectShare); d > tol.IndirectShare {
			bad = append(bad, fmt.Sprintf("indirect share %.4f vs %.4f (|Δ|=%.4f > %.4f)",
				f.IndirectShare, want.IndirectShare, d, tol.IndirectShare))
		}
	}
	if tol.SitesFrac > 0 {
		den := float64(want.Sites)
		if den < 1 {
			den = 1
		}
		if d := abs(float64(f.Sites-want.Sites)) / den; d > tol.SitesFrac {
			bad = append(bad, fmt.Sprintf("sites %d vs %d (Δ=%.3f > %.3f of declared)",
				f.Sites, want.Sites, d, tol.SitesFrac))
		}
	}
	if tol.OpShareFrac > 0 && want.PerOp != nil {
		ops := map[string]bool{}
		for op := range f.PerOp {
			ops[op] = true
		}
		for op := range want.PerOp {
			ops[op] = true
		}
		sorted := make([]string, 0, len(ops))
		for op := range ops {
			sorted = append(sorted, op)
		}
		sort.Strings(sorted)
		for _, op := range sorted {
			if d := abs(f.opShare(op) - want.opShare(op)); d > tol.OpShareFrac {
				bad = append(bad, fmt.Sprintf("op %s share %.4f vs %.4f (|Δ|=%.4f > %.4f)",
					op, f.opShare(op), want.opShare(op), d, tol.OpShareFrac))
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("fingerprint outside tolerance: %s", strings.Join(bad, "; "))
	}
	return nil
}

// String renders the fingerprint on one line, ops sorted by mnemonic.
func (f Fingerprint) String() string {
	ops := make([]string, 0, len(f.PerOp))
	for op := range f.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	var b strings.Builder
	fmt.Fprintf(&b, "branches=%d taken=%.3f cond-taken=%.3f indirect=%.3f sites=%d",
		f.Branches, f.TakenRatio, f.CondTakenRatio, f.IndirectShare, f.Sites)
	for _, op := range ops {
		fmt.Fprintf(&b, " %s=%d", op, f.PerOp[op])
	}
	return b.String()
}
