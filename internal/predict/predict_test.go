package predict_test

import (
	"testing"

	"branchcost/internal/isa"
	"branchcost/internal/predict"
	"branchcost/internal/profile"
	"branchcost/internal/vm"
)

// testProg builds a tiny program: a backward conditional at 3, a forward
// conditional at 1, a jump at 5, and an indirect at 6.
func testProg() *isa.Program {
	code := []isa.Inst{
		{Op: isa.NOP, ID: 0},
		{Op: isa.BEQ, Rs: 4, Rt: 0, Target: 4, Fall: 2, ID: 1}, // forward
		{Op: isa.NOP, ID: 2},
		{Op: isa.BNE, Rs: 4, Rt: 0, Target: 0, Fall: 4, ID: 3}, // backward
		{Op: isa.NOP, ID: 4},
		{Op: isa.JMP, Target: 0, ID: 5},
		{Op: isa.JMPI, Rs: 4, Table: []int32{0, 2}, ID: 6},
		{Op: isa.HALT, ID: 7},
	}
	return &isa.Program{Code: code, Words: 8}
}

func ev(pc int32, op isa.Op, taken bool, target int32, likely bool) vm.BranchEvent {
	return vm.BranchEvent{PC: pc, ID: pc, Op: op, Taken: taken, Target: target, Likely: likely}
}

func TestProgramTargets(t *testing.T) {
	pt := predict.ProgramTargets{Prog: testProg()}
	if pt.TargetAt(1) != 4 {
		t.Errorf("cond target = %d", pt.TargetAt(1))
	}
	if pt.TargetAt(5) != 0 {
		t.Errorf("jmp target = %d", pt.TargetAt(5))
	}
	if pt.TargetAt(6) != -1 {
		t.Errorf("jmpi target should be unknown, got %d", pt.TargetAt(6))
	}
}

func TestAlwaysTakenNotTaken(t *testing.T) {
	pt := predict.ProgramTargets{Prog: testProg()}
	at := predict.AlwaysTaken{Targets: pt}
	ant := predict.AlwaysNotTaken{}

	p := at.Predict(ev(1, isa.BEQ, false, 0, false))
	if !p.Taken || p.Target != 4 {
		t.Fatalf("always-taken: %+v", p)
	}
	p = ant.Predict(ev(1, isa.BEQ, true, 4, false))
	if p.Taken {
		t.Fatalf("always-not-taken: %+v", p)
	}
	if at.Name() == "" || ant.Name() == "" {
		t.Fatal("names")
	}
}

func TestBTFNT(t *testing.T) {
	pt := predict.ProgramTargets{Prog: testProg()}
	b := predict.BTFNT{Targets: pt}
	// Forward conditional at 1 -> not taken.
	if p := b.Predict(ev(1, isa.BEQ, true, 4, false)); p.Taken {
		t.Fatalf("forward predicted taken: %+v", p)
	}
	// Backward conditional at 3 -> taken with its target.
	if p := b.Predict(ev(3, isa.BNE, false, 0, false)); !p.Taken || p.Target != 0 {
		t.Fatalf("backward: %+v", p)
	}
	// Unconditionals -> taken.
	if p := b.Predict(ev(5, isa.JMP, true, 0, false)); !p.Taken || p.Target != 0 {
		t.Fatalf("jmp: %+v", p)
	}
	// Indirect -> taken with unknown target (always a target mismatch).
	if p := b.Predict(ev(6, isa.JMPI, true, 2, false)); !p.Taken || p.Target != -1 {
		t.Fatalf("jmpi: %+v", p)
	}
}

func TestLikelyBit(t *testing.T) {
	pt := predict.ProgramTargets{Prog: testProg()}
	l := predict.LikelyBit{Targets: pt}
	if p := l.Predict(ev(1, isa.BEQ, true, 4, true)); !p.Taken || p.Target != 4 {
		t.Fatalf("likely conditional: %+v", p)
	}
	if p := l.Predict(ev(1, isa.BEQ, true, 4, false)); p.Taken {
		t.Fatalf("unlikely conditional: %+v", p)
	}
	if p := l.Predict(ev(5, isa.JMP, true, 0, false)); !p.Taken || p.Target != 0 {
		t.Fatalf("jmp: %+v", p)
	}
	// Indirect jumps always mispredict under the likely-bit format.
	if p := l.Predict(ev(6, isa.JMPI, true, 2, true)); !p.Taken || p.Target != -1 {
		t.Fatalf("jmpi: %+v", p)
	}
}

func TestEvaluatorScoring(t *testing.T) {
	e := &predict.Evaluator{P: predict.AlwaysNotTaken{}}
	// 3 not-taken (correct), 2 taken (wrong).
	for i := 0; i < 3; i++ {
		e.Observe(ev(1, isa.BEQ, false, 0, false))
	}
	for i := 0; i < 2; i++ {
		e.Observe(ev(1, isa.BEQ, true, 4, false))
	}
	if e.S.Branches != 5 || e.S.Correct != 3 {
		t.Fatalf("stats: %+v", e.S)
	}
	if got := e.S.Accuracy(); got != 0.6 {
		t.Fatalf("accuracy = %v", got)
	}
	if e.S.CondBranches != 5 || e.S.CondCorrect != 3 {
		t.Fatalf("cond stats: %+v", e.S)
	}
	if got := e.S.CondAccuracy(); got != 0.6 {
		t.Fatalf("cond accuracy = %v", got)
	}
}

func TestEvaluatorTargetMismatchIsWrong(t *testing.T) {
	pt := predict.ProgramTargets{Prog: testProg()}
	e := &predict.Evaluator{P: predict.AlwaysTaken{Targets: pt}}
	// Branch taken but to a different place than the static target would
	// suggest is impossible for direct branches; use the indirect jump:
	// prediction taken with target -1, actual 2 -> direction right, target
	// wrong, must score as incorrect.
	e.Observe(ev(6, isa.JMPI, true, 2, false))
	if e.S.Correct != 0 || e.S.DirRight != 1 {
		t.Fatalf("target mismatch scored wrong: %+v", e.S)
	}
}

func TestEvaluatorIgnoresCalls(t *testing.T) {
	e := &predict.Evaluator{P: predict.AlwaysNotTaken{}}
	e.Observe(ev(0, isa.CALL, true, 5, false))
	if e.S.Branches != 0 {
		t.Fatalf("CALL scored: %+v", e.S)
	}
}

func TestEvaluatorFlushEvery(t *testing.T) {
	// A predictor that is correct only when it has state: track resets.
	resets := 0
	p := &resetCounter{onReset: func() { resets++ }}
	e := &predict.Evaluator{P: p, FlushEvery: 10}
	for i := 0; i < 35; i++ {
		e.Observe(ev(1, isa.BEQ, false, 0, false))
	}
	// A flush fires before the 11th, 21st and 31st branches.
	if resets != 3 {
		t.Fatalf("resets = %d, want 3", resets)
	}
}

type resetCounter struct {
	onReset func()
	n       int64
}

func (r *resetCounter) Name() string { return "reset-counter" }
func (r *resetCounter) Predict(vm.BranchEvent) predict.Prediction {
	return predict.Prediction{Hit: true}
}
func (r *resetCounter) Update(vm.BranchEvent) { r.n++ }
func (r *resetCounter) Reset()                { r.onReset() }

func TestStatsAdd(t *testing.T) {
	a := predict.Stats{Branches: 10, Correct: 8, DirRight: 9, Hits: 7, Misses: 3, CondBranches: 6, CondCorrect: 5}
	b := predict.Stats{Branches: 5, Correct: 2, DirRight: 3, Hits: 1, Misses: 4, CondBranches: 2, CondCorrect: 1}
	a.Add(b)
	if a.Branches != 15 || a.Correct != 10 || a.DirRight != 12 || a.Hits != 8 ||
		a.Misses != 7 || a.CondBranches != 8 || a.CondCorrect != 6 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.MissRatio() != 7.0/15 {
		t.Fatalf("miss ratio %v", a.MissRatio())
	}
}

func TestEmptyStats(t *testing.T) {
	var s predict.Stats
	if s.Accuracy() != 1 || s.MissRatio() != 0 || s.CondAccuracy() != 1 {
		t.Fatal("empty stats must be benign")
	}
}

func TestOnResultCallback(t *testing.T) {
	var got []bool
	e := &predict.Evaluator{
		P:        predict.AlwaysNotTaken{},
		OnResult: func(ev vm.BranchEvent, correct bool) { got = append(got, correct) },
	}
	e.Observe(ev(1, isa.BEQ, false, 0, false)) // correct
	e.Observe(ev(1, isa.BEQ, true, 4, false))  // wrong
	if len(got) != 2 || !got[0] || got[1] {
		t.Fatalf("callback sequence: %v", got)
	}
}

func TestOpcodeBias(t *testing.T) {
	// Build a profile where BEQ branches are mostly taken and BNE mostly
	// not-taken.
	prof := profile.New()
	col := &profile.Collector{P: prof}
	h := col.Hook()
	for i := 0; i < 10; i++ {
		h(ev(1, isa.BEQ, i < 8, 4, false)) // 80% taken
		h(ev(3, isa.BNE, i < 2, 0, false)) // 20% taken
	}
	ob := predict.NewOpcodeBias(prof, predict.ProgramTargets{Prog: testProg()})
	if p := ob.Predict(ev(1, isa.BEQ, false, 0, false)); !p.Taken || p.Target != 4 {
		t.Fatalf("beq should predict taken: %+v", p)
	}
	if p := ob.Predict(ev(3, isa.BNE, true, 0, false)); p.Taken {
		t.Fatalf("bne should predict not-taken: %+v", p)
	}
	if p := ob.Predict(ev(5, isa.JMP, true, 0, false)); !p.Taken || p.Target != 0 {
		t.Fatalf("jmp: %+v", p)
	}
	if p := ob.Predict(ev(6, isa.JMPI, true, 2, false)); !p.Taken || p.Target != -1 {
		t.Fatalf("jmpi: %+v", p)
	}
	if ob.Name() != "opcode-bias" {
		t.Fatal("name")
	}
	// Unseen opcode: defaults to not-taken (the pipeline default).
	if p := ob.Predict(ev(1, isa.BLT, true, 4, false)); p.Taken {
		t.Fatalf("unseen opcode should default to not-taken: %+v", p)
	}
}
