// Package experiments regenerates every table and figure of the paper's
// evaluation section (Tables 1–5, Figures 3–4, and the introduction's
// headline comparison), plus the ablations DESIGN.md calls out. Each
// experiment returns typed rows for tests and renders to plain text for the
// cmd/branchsim harness and EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"branchcost/internal/core"
	"branchcost/internal/predict"
	"branchcost/internal/telemetry"
	"branchcost/internal/tracefile"
	"branchcost/internal/vm"
	"branchcost/internal/workloads"
)

// Suite caches per-benchmark evaluations so that the tables sharing data
// (3 and 4, the figures, the headline) measure once. Concurrent requests
// for the same benchmark coalesce onto one evaluation (singleflight), and
// suite-wide fan-out runs through a worker pool bounded by Workers — the
// suite-level scheduler: with Cfg.Corpus warm, a full Tables/Headline pass
// schedules only replays and the FS live passes.
type Suite struct {
	Cfg core.Config

	// Workers bounds how many benchmarks evaluate concurrently in EvalNames
	// and Warm; 0 means GOMAXPROCS.
	Workers int

	mu    sync.Mutex
	evals map[string]*suiteEntry
}

// suiteEntry is one benchmark's in-flight or completed evaluation.
type suiteEntry struct {
	done chan struct{}
	e    *core.Eval
	err  error
}

// NewSuite returns a suite with the given configuration (zero = paper).
func NewSuite(cfg core.Config) *Suite {
	return &Suite{Cfg: cfg, evals: map[string]*suiteEntry{}}
}

// telem resolves the set the suite reports into: one already on the context
// wins; otherwise the configured Cfg.Telemetry is attached to the context so
// the whole evaluation stack below sees it.
func (s *Suite) telem(ctx context.Context) (*telemetry.Set, context.Context) {
	if set := telemetry.FromContext(ctx); set != nil {
		return set, ctx
	}
	if s.Cfg.Telemetry != nil {
		return s.Cfg.Telemetry, telemetry.NewContext(ctx, s.Cfg.Telemetry)
	}
	return nil, ctx
}

// Eval returns the (cached) evaluation of the named benchmark.
func (s *Suite) Eval(name string) (*core.Eval, error) {
	return s.EvalContext(context.Background(), name)
}

// EvalContext is Eval with cancellation. The first caller for a name runs
// the evaluation; concurrent callers wait on its result (or their own
// context). A failed evaluation is not cached, so a later call retries.
func (s *Suite) EvalContext(ctx context.Context, name string) (*core.Eval, error) {
	set, ctx := s.telem(ctx)
	s.mu.Lock()
	ent, ok := s.evals[name]
	if !ok {
		ent = &suiteEntry{done: make(chan struct{})}
		s.evals[name] = ent
		s.mu.Unlock()
		set.Counter("suite.evals").Inc()
		start := time.Now()
		b, err := workloads.ByName(name)
		if err == nil {
			ent.e, ent.err = core.EvaluateBenchmarkContext(ctx, b, s.Cfg)
		} else {
			ent.err = err
		}
		if ent.err != nil {
			s.mu.Lock()
			delete(s.evals, name)
			s.mu.Unlock()
		} else {
			wall := time.Since(start).Nanoseconds()
			set.Counter("suite.bench_wall_ns").Add(wall)
			telemetry.Logger(ctx).Debug("suite: benchmark evaluated",
				"benchmark", name, "wall_ns", wall,
				"from_corpus", ent.e.FromCorpus, "vm_runs", ent.e.VMRuns)
		}
		close(ent.done)
		return ent.e, ent.err
	}
	s.mu.Unlock()
	// Another caller already owns this benchmark: coalesce onto its result.
	set.Counter("suite.coalesced").Inc()
	select {
	case <-ent.done:
		return ent.e, ent.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// EvalNames evaluates the named benchmarks through the bounded worker pool
// and returns them in argument order. A failing benchmark's error is wrapped
// with its name, so a suite-wide failure names the culprit.
func (s *Suite) EvalNames(ctx context.Context, names []string) ([]*core.Eval, error) {
	set, ctx := s.telem(ctx)
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	// Queue depth counts benchmarks waiting on a pool slot; active workers
	// (with a peak high-water mark) counts slots in use.
	queue := set.Gauge("suite.queue_depth")
	active := set.Gauge("suite.active_workers")
	peak := set.Gauge("suite.active_workers_peak")
	out := make([]*core.Eval, len(names))
	errs := make([]error, len(names))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		queue.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			queue.Add(-1)
			active.Add(1)
			peak.RecordMax(active.Value())
			defer func() {
				active.Add(-1)
				<-sem
			}()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			e, err := s.EvalContext(ctx, name)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", name, err)
				return
			}
			out[i] = e
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Manifests returns the run manifests of every completed, successful
// evaluation in the suite's cache, sorted by benchmark name — the payload of
// a suite-level -metrics report.
func (s *Suite) Manifests() []*core.Manifest {
	s.mu.Lock()
	entries := make(map[string]*suiteEntry, len(s.evals))
	for name, ent := range s.evals {
		entries[name] = ent
	}
	s.mu.Unlock()
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*core.Manifest
	for _, name := range names {
		ent := entries[name]
		select {
		case <-ent.done:
			if ent.err == nil {
				out = append(out, ent.e.Manifest())
			}
		default: // still in flight
		}
	}
	return out
}

// Warm records-or-loads every benchmark of the suite (all twelve, the
// Table-5-only ones included) through the worker pool. With Cfg.Corpus set,
// a cold corpus is fully populated by one Warm call and every later suite
// evaluation — this process or the next — replays from disk.
func (s *Suite) Warm(ctx context.Context) error {
	var names []string
	for _, b := range workloads.All() {
		names = append(names, b.Name)
	}
	_, err := s.EvalNames(ctx, names)
	return err
}

// EvalPrimary evaluates the ten primary benchmarks (in parallel, bounded by
// Workers) and returns them in the paper's table order.
func (s *Suite) EvalPrimary() ([]*core.Eval, error) {
	return s.EvalPrimaryContext(context.Background())
}

// EvalPrimaryContext is EvalPrimary with cancellation.
func (s *Suite) EvalPrimaryContext(ctx context.Context) ([]*core.Eval, error) {
	var names []string
	for _, b := range workloads.Primary() {
		names = append(names, b.Name)
	}
	return s.EvalNames(ctx, names)
}

// AverageAccuracies returns the suite-average A_SBTB, A_CBTB and A_FS used
// by the figures and the headline (matching the paper's use of Table 3
// averages).
func (s *Suite) AverageAccuracies() (aSBTB, aCBTB, aFS float64, err error) {
	evals, err := s.EvalPrimary()
	if err != nil {
		return 0, 0, 0, err
	}
	n := float64(len(evals))
	for _, e := range evals {
		aSBTB += e.SBTB().Stats.Accuracy()
		aCBTB += e.CBTB().Stats.Accuracy()
		aFS += e.FS().Stats.Accuracy()
	}
	return aSBTB / n, aCBTB / n, aFS / n, nil
}

// newScheme constructs a registered scheme's predictor against one cached
// evaluation's program and profile.
func newScheme(name string, e *core.Eval, params predict.Params) predict.Predictor {
	return predict.MustLookup(name).New(predict.SchemeContext{
		Prog: e.Program, Profile: e.Profile, Params: params,
	})
}

// geometry builds the registry parameters for a swept BTB configuration
// (same geometry for both buffers, as the ablation tables use).
func geometry(entries, assoc, bits int, threshold uint8) predict.Params {
	return predict.Params{
		SBTBEntries: entries, SBTBAssoc: assoc,
		CBTBEntries: entries, CBTBAssoc: assoc,
		CounterBits: bits, CounterThreshold: threshold,
	}
}

// replayEvaluators scores the evaluators over a recorded trace in parallel
// — the sweeps' hot path: no VM re-execution per configuration point.
func replayEvaluators(tr *tracefile.Trace, evs []*predict.Evaluator) {
	hooks := make([]vm.BranchFunc, len(evs))
	for i, ev := range evs {
		hooks[i] = ev.Hook()
	}
	tr.ScoreParallel(hooks...)
}
