// Package asm provides a textual assembly format for isa programs: Format
// renders an untransformed program as assembly source with symbolic labels,
// and Parse assembles such source back into an executable program. The two
// round-trip exactly (asm.Parse(asm.Format(p)) reproduces p), which makes
// the format suitable for golden files, hand-written test kernels, and
// inspecting compiler output with cmd/bcc.
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"branchcost/internal/isa"
)

// Format renders p as assembly text. The program must be untransformed
// (forward slots have no textual representation).
func Format(p *isa.Program) (string, error) {
	if p.Loc != nil {
		return "", fmt.Errorf("asm: cannot format a transformed program")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; branchcost assembly (%d instructions)\n", len(p.Code))
	fmt.Fprintf(&b, ".words %d\n", p.Words)
	if n := significantData(p.Data); n > 0 {
		b.WriteString(".data")
		for _, v := range p.Data[:n] {
			fmt.Fprintf(&b, " %d", v)
		}
		b.WriteByte('\n')
	}
	if p.Entry != 0 {
		fmt.Fprintf(&b, ".entry L%d\n", p.Entry)
	}

	// Label every control-flow target.
	labeled := map[int32]bool{p.Entry: true}
	for _, in := range p.Code {
		switch {
		case in.Op.IsCondBranch():
			labeled[in.Target] = true
		case in.Op == isa.JMP || in.Op == isa.CALL:
			labeled[in.Target] = true
		case in.Op == isa.JMPI:
			for _, t := range in.Table {
				labeled[t] = true
			}
		}
	}

	funcStart := map[int32]string{}
	funcEnd := map[int32]bool{}
	for _, f := range p.Funcs {
		funcStart[f.Entry] = f.Name
		funcEnd[f.End] = true
	}

	for i, in := range p.Code {
		pos := int32(i)
		if funcEnd[pos] {
			b.WriteString("end\n")
		}
		if name, ok := funcStart[pos]; ok {
			fmt.Fprintf(&b, "func %s\n", name)
		}
		if labeled[pos] {
			fmt.Fprintf(&b, "L%d:\n", pos)
		}
		line, err := formatInst(in)
		if err != nil {
			return "", fmt.Errorf("asm: instruction %d: %w", i, err)
		}
		fmt.Fprintf(&b, "\t%s\n", line)
	}
	if funcEnd[int32(len(p.Code))] {
		b.WriteString("end\n")
	}
	return b.String(), nil
}

func significantData(data []int64) int {
	n := len(data)
	for n > 0 && data[n-1] == 0 {
		n--
	}
	return n
}

func formatInst(in isa.Inst) (string, error) {
	likely := ""
	if in.Likely {
		likely = "!"
	}
	switch in.Op {
	case isa.NOP, isa.HALT, isa.RET:
		return in.Op.String(), nil
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.SLT, isa.SLE, isa.SEQ, isa.SNE:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs, in.Rt), nil
	case isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.SHLI, isa.SHRI, isa.SLTI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs, in.Imm), nil
	case isa.LDI:
		return fmt.Sprintf("ldi r%d, %d", in.Rd, in.Imm), nil
	case isa.MOV:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs), nil
	case isa.LD:
		return fmt.Sprintf("ld r%d, %d(r%d)", in.Rd, in.Imm, in.Rs), nil
	case isa.ST:
		return fmt.Sprintf("st %d(r%d), r%d", in.Imm, in.Rs, in.Rt), nil
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLE, isa.BGT:
		return fmt.Sprintf("%s%s r%d, r%d, L%d", in.Op, likely, in.Rs, in.Rt, in.Target), nil
	case isa.JMP:
		return fmt.Sprintf("jmp%s L%d", likely, in.Target), nil
	case isa.CALL:
		return fmt.Sprintf("call L%d", in.Target), nil
	case isa.JMPI:
		parts := make([]string, len(in.Table))
		for i, t := range in.Table {
			parts[i] = fmt.Sprintf("L%d", t)
		}
		return fmt.Sprintf("jmpi r%d, [%s]", in.Rs, strings.Join(parts, ", ")), nil
	case isa.IN:
		return fmt.Sprintf("in r%d", in.Rd), nil
	case isa.OUT:
		return fmt.Sprintf("out r%d", in.Rs), nil
	}
	return "", fmt.Errorf("unsupported opcode %v", in.Op)
}

// Parse assembles source text into a program.
func Parse(src string) (*isa.Program, error) {
	p := &parser{labels: map[string]int32{}}
	if err := p.firstPass(src); err != nil {
		return nil, err
	}
	if err := p.secondPass(src); err != nil {
		return nil, err
	}
	prog := &isa.Program{
		Code:  p.code,
		Data:  p.data,
		Words: p.words,
		Funcs: p.funcs,
		Entry: p.entry,
	}
	if prog.Words < len(prog.Data) {
		prog.Words = len(prog.Data)
	}
	if prog.Words == 0 {
		prog.Words = len(prog.Data)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("asm: assembled program invalid: %w", err)
	}
	return prog, nil
}

type parser struct {
	labels map[string]int32
	code   []isa.Inst
	data   []int64
	words  int
	funcs  []isa.FuncInfo
	entry  int32

	openFunc string
	openAt   int32
}

// cleanLines splits source into semantic lines (comments stripped).
func cleanLines(src string) []string {
	raw := strings.Split(src, "\n")
	out := make([]string, len(raw))
	for i, l := range raw {
		if idx := strings.IndexByte(l, ';'); idx >= 0 {
			l = l[:idx]
		}
		out[i] = strings.TrimSpace(l)
	}
	return out
}

// firstPass records label positions.
func (p *parser) firstPass(src string) error {
	pos := int32(0)
	for lineNo, l := range cleanLines(src) {
		switch {
		case l == "" || strings.HasPrefix(l, "."):
		case strings.HasSuffix(l, ":"):
			name := strings.TrimSuffix(l, ":")
			if name == "" {
				return fmt.Errorf("asm: line %d: empty label", lineNo+1)
			}
			if _, dup := p.labels[name]; dup {
				return fmt.Errorf("asm: line %d: duplicate label %s", lineNo+1, name)
			}
			p.labels[name] = pos
		case strings.HasPrefix(l, "func ") || l == "end":
		default:
			pos++
		}
	}
	return nil
}

func (p *parser) resolve(lineNo int, label string) (int32, error) {
	t, ok := p.labels[label]
	if !ok {
		return 0, fmt.Errorf("asm: line %d: undefined label %q", lineNo, label)
	}
	return t, nil
}

func (p *parser) secondPass(src string) error {
	for lineNo0, l := range cleanLines(src) {
		lineNo := lineNo0 + 1
		switch {
		case l == "" || strings.HasSuffix(l, ":"):
		case strings.HasPrefix(l, ".words"):
			v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(l, ".words")))
			if err != nil {
				return fmt.Errorf("asm: line %d: bad .words: %v", lineNo, err)
			}
			p.words = v
		case strings.HasPrefix(l, ".data"):
			for _, f := range strings.Fields(strings.TrimPrefix(l, ".data")) {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return fmt.Errorf("asm: line %d: bad .data value %q", lineNo, f)
				}
				p.data = append(p.data, v)
			}
		case strings.HasPrefix(l, ".entry"):
			t, err := p.resolve(lineNo, strings.TrimSpace(strings.TrimPrefix(l, ".entry")))
			if err != nil {
				return err
			}
			p.entry = t
		case strings.HasPrefix(l, "func "):
			if p.openFunc != "" {
				return fmt.Errorf("asm: line %d: func %s not closed before new func", lineNo, p.openFunc)
			}
			p.openFunc = strings.TrimSpace(strings.TrimPrefix(l, "func "))
			p.openAt = int32(len(p.code))
		case l == "end":
			if p.openFunc == "" {
				return fmt.Errorf("asm: line %d: end without func", lineNo)
			}
			p.funcs = append(p.funcs, isa.FuncInfo{Name: p.openFunc, Entry: p.openAt, End: int32(len(p.code))})
			p.openFunc = ""
		default:
			in, err := p.parseInst(lineNo, l)
			if err != nil {
				return err
			}
			in.ID = int32(len(p.code))
			if in.Op.IsCondBranch() {
				in.Fall = in.ID + 1
			}
			p.code = append(p.code, in)
		}
	}
	if p.openFunc != "" {
		return fmt.Errorf("asm: func %s not closed", p.openFunc)
	}
	sort.Slice(p.funcs, func(i, j int) bool { return p.funcs[i].Entry < p.funcs[j].Entry })
	return nil
}

var condOps = map[string]isa.Op{
	"beq": isa.BEQ, "bne": isa.BNE, "blt": isa.BLT,
	"bge": isa.BGE, "ble": isa.BLE, "bgt": isa.BGT,
}

var aluOps = map[string]isa.Op{
	"add": isa.ADD, "sub": isa.SUB, "mul": isa.MUL, "div": isa.DIV,
	"mod": isa.MOD, "and": isa.AND, "or": isa.OR, "xor": isa.XOR,
	"shl": isa.SHL, "shr": isa.SHR, "slt": isa.SLT, "sle": isa.SLE,
	"seq": isa.SEQ, "sne": isa.SNE,
}

var immOps = map[string]isa.Op{
	"addi": isa.ADDI, "muli": isa.MULI, "andi": isa.ANDI, "ori": isa.ORI,
	"shli": isa.SHLI, "shri": isa.SHRI, "slti": isa.SLTI,
}

func (p *parser) parseInst(lineNo int, l string) (isa.Inst, error) {
	mnem, rest, _ := strings.Cut(l, " ")
	likely := false
	if strings.HasSuffix(mnem, "!") {
		likely = true
		mnem = strings.TrimSuffix(mnem, "!")
	}
	args := splitArgs(rest)
	fail := func(msg string) (isa.Inst, error) {
		return isa.Inst{}, fmt.Errorf("asm: line %d: %s in %q", lineNo, msg, l)
	}

	switch {
	case mnem == "nop":
		return isa.Inst{Op: isa.NOP}, nil
	case mnem == "halt":
		return isa.Inst{Op: isa.HALT}, nil
	case mnem == "ret":
		return isa.Inst{Op: isa.RET}, nil

	case aluOps[mnem] != 0:
		if len(args) != 3 {
			return fail("want 3 operands")
		}
		rd, e1 := reg(args[0])
		rs, e2 := reg(args[1])
		rt, e3 := reg(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return fail("bad register")
		}
		return isa.Inst{Op: aluOps[mnem], Rd: rd, Rs: rs, Rt: rt}, nil

	case immOps[mnem] != 0:
		if len(args) != 3 {
			return fail("want 3 operands")
		}
		rd, e1 := reg(args[0])
		rs, e2 := reg(args[1])
		imm, e3 := strconv.ParseInt(args[2], 10, 64)
		if e1 != nil || e2 != nil || e3 != nil {
			return fail("bad operands")
		}
		return isa.Inst{Op: immOps[mnem], Rd: rd, Rs: rs, Imm: imm}, nil

	case mnem == "ldi":
		if len(args) != 2 {
			return fail("want 2 operands")
		}
		rd, e1 := reg(args[0])
		imm, e2 := strconv.ParseInt(args[1], 10, 64)
		if e1 != nil || e2 != nil {
			return fail("bad operands")
		}
		return isa.Inst{Op: isa.LDI, Rd: rd, Imm: imm}, nil

	case mnem == "mov":
		if len(args) != 2 {
			return fail("want 2 operands")
		}
		rd, e1 := reg(args[0])
		rs, e2 := reg(args[1])
		if e1 != nil || e2 != nil {
			return fail("bad registers")
		}
		return isa.Inst{Op: isa.MOV, Rd: rd, Rs: rs}, nil

	case mnem == "ld":
		if len(args) != 2 {
			return fail("want 2 operands")
		}
		rd, e1 := reg(args[0])
		imm, rs, e2 := memOperand(args[1])
		if e1 != nil || e2 != nil {
			return fail("bad operands")
		}
		return isa.Inst{Op: isa.LD, Rd: rd, Rs: rs, Imm: imm}, nil

	case mnem == "st":
		if len(args) != 2 {
			return fail("want 2 operands")
		}
		imm, rs, e1 := memOperand(args[0])
		rt, e2 := reg(args[1])
		if e1 != nil || e2 != nil {
			return fail("bad operands")
		}
		return isa.Inst{Op: isa.ST, Rs: rs, Rt: rt, Imm: imm}, nil

	case condOps[mnem] != 0:
		if len(args) != 3 {
			return fail("want 3 operands")
		}
		rs, e1 := reg(args[0])
		rt, e2 := reg(args[1])
		t, e3 := p.resolve(lineNo, args[2])
		if e1 != nil || e2 != nil {
			return fail("bad registers")
		}
		if e3 != nil {
			return isa.Inst{}, e3
		}
		return isa.Inst{Op: condOps[mnem], Rs: rs, Rt: rt, Target: t, Likely: likely}, nil

	case mnem == "jmp" || mnem == "call":
		if len(args) != 1 {
			return fail("want 1 operand")
		}
		t, err := p.resolve(lineNo, args[0])
		if err != nil {
			return isa.Inst{}, err
		}
		op := isa.JMP
		if mnem == "call" {
			op = isa.CALL
		}
		return isa.Inst{Op: op, Target: t, Likely: likely && op == isa.JMP}, nil

	case mnem == "jmpi":
		if len(args) < 2 {
			return fail("want register and table")
		}
		rs, err := reg(args[0])
		if err != nil {
			return fail("bad register")
		}
		tblText := strings.Join(args[1:], ",")
		tblText = strings.TrimPrefix(strings.TrimSuffix(strings.TrimSpace(tblText), "]"), "[")
		var tbl []int32
		for _, f := range strings.FieldsFunc(tblText, func(r rune) bool { return r == ',' || r == ' ' }) {
			t, err := p.resolve(lineNo, strings.TrimSpace(f))
			if err != nil {
				return isa.Inst{}, err
			}
			tbl = append(tbl, t)
		}
		if len(tbl) == 0 {
			return fail("empty jump table")
		}
		return isa.Inst{Op: isa.JMPI, Rs: rs, Table: tbl}, nil

	case mnem == "in":
		if len(args) != 1 {
			return fail("want 1 operand")
		}
		rd, err := reg(args[0])
		if err != nil {
			return fail("bad register")
		}
		return isa.Inst{Op: isa.IN, Rd: rd}, nil

	case mnem == "out":
		if len(args) != 1 {
			return fail("want 1 operand")
		}
		rs, err := reg(args[0])
		if err != nil {
			return fail("bad register")
		}
		return isa.Inst{Op: isa.OUT, Rs: rs}, nil
	}
	return fail("unknown mnemonic")
}

func splitArgs(rest string) []string {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func reg(s string) (uint8, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

// memOperand parses "disp(rN)".
func memOperand(s string) (int64, uint8, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	disp, err := strconv.ParseInt(strings.TrimSpace(s[:open]), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad displacement in %q", s)
	}
	r, err := reg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	return disp, r, nil
}
