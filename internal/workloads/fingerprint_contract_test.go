package workloads_test

import (
	"testing"

	"branchcost/internal/profile"
	"branchcost/internal/vm"
	"branchcost/internal/workloads"
)

// TestFingerprintDeclared pins the suite-wide invariant that every
// registered benchmark — the paper's twelve and the modern classes — carries
// a declared fingerprint contract the conformance gate can check.
func TestFingerprintDeclared(t *testing.T) {
	for _, b := range workloads.Everything() {
		if b.Fingerprint == nil {
			t.Errorf("%s: no declared fingerprint", b.Name)
			continue
		}
		tol := b.FingerprintTol
		if tol.TakenRatio <= 0 || tol.IndirectShare <= 0 || tol.SitesFrac <= 0 {
			t.Errorf("%s: tolerance %+v leaves a band disabled", b.Name, tol)
		}
	}
}

// profileRun executes one profiling run and returns its profile.
func profileRun(t *testing.T, b *workloads.Benchmark, run int) *profile.Profile {
	t.Helper()
	prog, err := b.Program()
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	p := profile.New()
	col := &profile.Collector{P: p}
	if _, err := vm.Run(prog, b.Input(run), col.Hook(), vm.Config{}); err != nil {
		t.Fatalf("%s run %d: %v", b.Name, run, err)
	}
	return p
}

// TestFingerprintContracts measures every benchmark against its declared
// contract:
//
//   - the aggregate fingerprint over all profiling runs must land within the
//     declared tolerance (this is the fingerprint the corpus .prof stores);
//   - the aggregate over only the first three runs must too, so the contract
//     does not depend on one late run carrying the average;
//   - modern classes additionally hold per run — their generators are
//     seed-stable by construction, unlike the legacy suite's deliberately
//     multimodal input mixes (cmp's identical-file runs, grep's no-match
//     patterns).
func TestFingerprintContracts(t *testing.T) {
	for _, b := range workloads.Everything() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			if b.Fingerprint == nil {
				t.Fatal("no declared fingerprint")
			}
			want, tol := *b.Fingerprint, b.FingerprintTol
			agg, prefix := profile.New(), profile.New()
			for run := 0; run < b.Runs; run++ {
				p := profileRun(t, b, run)
				if b.Class != "" {
					if err := p.Fingerprint().Within(want, tol); err != nil {
						t.Errorf("run %d: %v", run, err)
					}
				}
				agg.Merge(p)
				if run < 3 {
					prefix.Merge(p)
				}
			}
			if err := agg.Fingerprint().Within(want, tol); err != nil {
				t.Errorf("aggregate over %d runs: %v", b.Runs, err)
			}
			if err := prefix.Fingerprint().Within(want, tol); err != nil {
				t.Errorf("aggregate over first runs: %v", err)
			}
		})
	}
}

// TestScanPairSameFingerprint pins the scan class's defining property: the
// sorted and unsorted variants process the same values, so their aggregate
// fingerprints are identical — data order is the only thing that differs,
// and any per-scheme score gap between the two is pure history-predictability.
func TestScanPairSameFingerprint(t *testing.T) {
	sorted, err := workloads.ByName("scan-sorted")
	if err != nil {
		t.Fatal(err)
	}
	unsorted, err := workloads.ByName("scan-unsorted")
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Runs != unsorted.Runs {
		t.Fatalf("run counts differ: %d vs %d", sorted.Runs, unsorted.Runs)
	}
	for run := 0; run < sorted.Runs; run++ {
		fs := profileRun(t, sorted, run).Fingerprint()
		fu := profileRun(t, unsorted, run).Fingerprint()
		if fs.Branches != fu.Branches || fs.Sites != fu.Sites ||
			fs.TakenRatio != fu.TakenRatio || fs.CondTakenRatio != fu.CondTakenRatio ||
			fs.IndirectShare != fu.IndirectShare {
			t.Errorf("run %d: fingerprints diverge:\n  sorted   %s\n  unsorted %s",
				run, fs.String(), fu.String())
		}
	}
}
