// Package btb implements the two hardware schemes of the paper: the Simple
// Branch Target Buffer (SBTB) and the Counter-based Branch Target Buffer
// (CBTB), both built on a shared associative buffer with LRU replacement.
// The paper's configuration is 256 entries, fully associative, LRU; the
// CBTB uses a 2-bit saturating counter with threshold T = 2.
package btb

import (
	"fmt"

	"branchcost/internal/predict"
	"branchcost/internal/vm"
)

// Entry is one buffer line. Target caches the most recent taken target
// (standing in for the "first k target instructions" the hardware stores —
// only the address matters to the prediction-accuracy measurement).
type Entry struct {
	PC      int32
	Target  int32
	Counter uint8
	valid   bool
	lru     uint64
}

// Buffer is an associative cache of branch entries with LRU replacement.
// Assoc == Entries gives the paper's fully-associative organization.
type Buffer struct {
	sets  [][]Entry
	assoc int
	clock uint64

	// Capacity metrics.
	inserts int64
	evicts  int64
}

// NewBuffer returns a buffer with the given total entries and associativity.
// It panics if entries is not a positive multiple of assoc.
func NewBuffer(entries, assoc int) *Buffer {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		panic(fmt.Sprintf("btb: bad geometry %d entries / %d-way", entries, assoc))
	}
	nsets := entries / assoc
	b := &Buffer{sets: make([][]Entry, nsets), assoc: assoc}
	for i := range b.sets {
		b.sets[i] = make([]Entry, assoc)
	}
	return b
}

// Entries returns the total capacity.
func (b *Buffer) Entries() int { return len(b.sets) * b.assoc }

// Assoc returns the associativity.
func (b *Buffer) Assoc() int { return b.assoc }

// Evictions returns how many valid entries were replaced.
func (b *Buffer) Evictions() int64 { return b.evicts }

func (b *Buffer) set(pc int32) []Entry {
	return b.sets[uint32(pc)%uint32(len(b.sets))]
}

// Lookup finds the entry for pc, updating its LRU stamp on hit.
func (b *Buffer) Lookup(pc int32) (*Entry, bool) {
	b.clock++
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].PC == pc {
			set[i].lru = b.clock
			return &set[i], true
		}
	}
	return nil, false
}

// Insert returns the entry for pc, allocating (and evicting the LRU line of
// the set if necessary) when absent. The returned entry is valid and has its
// LRU stamp refreshed; newly allocated entries are zeroed.
func (b *Buffer) Insert(pc int32) *Entry {
	b.clock++
	set := b.set(pc)
	var victim *Entry
	for i := range set {
		e := &set[i]
		if e.valid && e.PC == pc {
			e.lru = b.clock
			return e
		}
		if !e.valid {
			if victim == nil || victim.valid {
				victim = e
			}
			continue
		}
		if victim == nil || (victim.valid && e.lru < victim.lru) {
			victim = e
		}
	}
	if victim.valid {
		b.evicts++
	}
	b.inserts++
	*victim = Entry{PC: pc, valid: true, lru: b.clock}
	return victim
}

// Delete invalidates the entry for pc if present.
func (b *Buffer) Delete(pc int32) {
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].PC == pc {
			set[i] = Entry{}
			return
		}
	}
}

// Reset invalidates every entry (context-switch simulation).
func (b *Buffer) Reset() {
	for _, set := range b.sets {
		for i := range set {
			set[i] = Entry{}
		}
	}
}

// Len returns the number of valid entries.
func (b *Buffer) Len() int {
	n := 0
	for _, set := range b.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// SBTB is the Simple Branch Target Buffer: it remembers taken branches; a
// hit predicts taken, a miss predicts not-taken, and a hit whose branch
// executes not-taken is deleted.
type SBTB struct{ buf *Buffer }

// NewSBTB returns an SBTB with the given geometry. The paper's
// configuration is NewSBTB(256, 256).
func NewSBTB(entries, assoc int) *SBTB { return &SBTB{buf: NewBuffer(entries, assoc)} }

// Name implements predict.Predictor.
func (s *SBTB) Name() string { return "sbtb" }

// Buffer exposes the underlying buffer for inspection in tests.
func (s *SBTB) Buffer() *Buffer { return s.buf }

// Predict implements predict.Predictor.
func (s *SBTB) Predict(ev vm.BranchEvent) predict.Prediction {
	if e, ok := s.buf.Lookup(ev.PC); ok {
		return predict.Prediction{Taken: true, Target: e.Target, Hit: true}
	}
	return predict.Prediction{Taken: false, Hit: false}
}

// Update implements predict.Predictor.
func (s *SBTB) Update(ev vm.BranchEvent) {
	if ev.Taken {
		e := s.buf.Insert(ev.PC)
		e.Target = ev.Target
		return
	}
	s.buf.Delete(ev.PC)
}

// Reset implements predict.Predictor.
func (s *SBTB) Reset() { s.buf.Reset() }

// CBTB is the Counter-based Branch Target Buffer: every executed branch is
// eligible for an entry; an n-bit saturating counter with threshold T
// predicts the direction (taken when counter >= T).
//
// The paper's text says "predicted taken when C > T", but with its T = 2 and
// initialization to T on a taken branch that reading would predict a
// just-taken branch not-taken; we use >= as in J. E. Smith's original
// scheme, which the paper cites as the source.
type CBTB struct {
	buf       *Buffer
	max       uint8 // 2^bits - 1
	threshold uint8
}

// NewCBTB returns a CBTB with the given geometry and counter configuration.
// The paper's configuration is NewCBTB(256, 256, 2, 2).
func NewCBTB(entries, assoc, bits int, threshold uint8) *CBTB {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("btb: counter bits %d out of range [1,8]", bits))
	}
	maxC := uint8(1)<<bits - 1
	if threshold > maxC {
		panic(fmt.Sprintf("btb: threshold %d exceeds counter max %d", threshold, maxC))
	}
	return &CBTB{buf: NewBuffer(entries, assoc), max: maxC, threshold: threshold}
}

// Name implements predict.Predictor.
func (c *CBTB) Name() string { return "cbtb" }

// Buffer exposes the underlying buffer for inspection in tests.
func (c *CBTB) Buffer() *Buffer { return c.buf }

// Predict implements predict.Predictor.
func (c *CBTB) Predict(ev vm.BranchEvent) predict.Prediction {
	if e, ok := c.buf.Lookup(ev.PC); ok {
		if e.Counter >= c.threshold {
			return predict.Prediction{Taken: true, Target: e.Target, Hit: true}
		}
		return predict.Prediction{Taken: false, Hit: true}
	}
	return predict.Prediction{Taken: false, Hit: false}
}

// Update implements predict.Predictor.
func (c *CBTB) Update(ev vm.BranchEvent) {
	e, ok := c.buf.Lookup(ev.PC)
	if !ok {
		e = c.buf.Insert(ev.PC)
		e.Target = -1
		if ev.Taken {
			e.Counter = c.threshold
		} else if c.threshold > 0 {
			e.Counter = c.threshold - 1
		}
		if ev.Taken {
			e.Target = ev.Target
		}
		return
	}
	if ev.Taken {
		if e.Counter < c.max {
			e.Counter++
		}
		e.Target = ev.Target
	} else if e.Counter > 0 {
		e.Counter--
	}
}

// Reset implements predict.Predictor.
func (c *CBTB) Reset() { c.buf.Reset() }
