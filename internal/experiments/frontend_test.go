package experiments_test

import (
	"math"
	"testing"

	"branchcost/internal/core"
	"branchcost/internal/experiments"
	"branchcost/internal/pipeline"
)

// TestFrontendCheckAgrees: on real benchmarks, the calibrated Superscalar
// model lands within each run's provable tolerance at every width, and at
// W = 1 the agreement collapses to the analytic identity (1e-9).
func TestFrontendCheckAgrees(t *testing.T) {
	s := experiments.NewSuite(core.Config{})
	names := []string{"wc", "cmp"}
	rows, _, err := experiments.FrontendCheck(s, names, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(names) * 2 * len(experiments.FrontendSchemes); len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%s W=%d %s: |%v - %v| = %v > tol %v",
				r.Benchmark, r.Width, r.Scheme, r.SimCost, r.SSCost, r.Err, r.Tolerance)
		}
		if r.Width == 1 && r.Err > 1e-9 {
			t.Errorf("%s W=1 %s: error %v not analytic-exact", r.Benchmark, r.Scheme, r.Err)
		}
	}
}

// TestFrontendSweepWidthOneIsAnalytic: at W = 1 the sweep's simulated cost,
// Superscalar model and VariableFetch model all coincide (the analytic
// degenerate point), and the replayed hardware-scheme accuracies equal the
// core evaluation's scored accuracies — same trace, same predictors.
func TestFrontendSweepWidthOneIsAnalytic(t *testing.T) {
	s := experiments.NewSuite(core.Config{Schemes: []string{"sbtb", "cbtb", "btb2l", "fs"}})
	rows, _, err := experiments.FrontendSweep(s, []string{"wc"}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Eval("wc")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.SimCost-r.SSCost) > 1e-9 || math.Abs(r.SimCost-r.VFCost) > 1e-9 {
			t.Errorf("W=1 %s: sim %v, ss %v, vf %v — models must coincide",
				r.Scheme, r.SimCost, r.SSCost, r.VFCost)
		}
		switch r.Scheme {
		case "SBTB", "CBTB", "BTB2L":
			name := map[string]string{"SBTB": "sbtb", "CBTB": "cbtb", "BTB2L": "btb2l"}[r.Scheme]
			if want := e.Scheme(name).Stats.Accuracy(); math.Abs(r.Accuracy-want) > 1e-12 {
				t.Errorf("%s replay accuracy %v, core scored %v", r.Scheme, r.Accuracy, want)
			}
		}
	}
	// Eval.Cost accepts any frontend model; at W = 1 the wider models
	// reproduce the analytic Config numbers bit-exactly.
	base := pipeline.Config{K: 1, LBar: 2, MBar: 2}
	s1, c1, f1 := e.Cost(base)
	s2, c2, f2 := e.Cost(pipeline.Superscalar{W: 1, Base: base, BreakRate: 0.9})
	s3, c3, f3 := e.Cost(pipeline.VariableFetch{W: 1, Base: base, Rate: 1})
	if s1 != s2 || c1 != c2 || f1 != f2 || s1 != s3 || c1 != c3 || f1 != f3 {
		t.Errorf("W=1 models disagree through Eval.Cost: (%v %v %v) (%v %v %v) (%v %v %v)",
			s1, c1, f1, s2, c2, f2, s3, c3, f3)
	}
}
