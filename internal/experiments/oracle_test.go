package experiments_test

import (
	"testing"

	"branchcost/internal/core"
	"branchcost/internal/experiments"
	"branchcost/internal/oracle"
)

// TestSuiteManifestsPassOracle closes the loop between the measurement
// engine and the verification subsystem: everything a suite run emits — the
// run manifests behind -metrics and the recorded traces behind every table —
// must pass the oracle's independent checks. A manifest whose counters don't
// reconcile, or a trace on which a production scheme disagrees with its
// naive twin, fails the suite here before it can reach a table.
func TestSuiteManifestsPassOracle(t *testing.T) {
	s := experiments.NewSuite(core.Config{Schemes: []string{"sbtb", "cbtb", "fs"}})
	names := []string{"wc", "cmp"}
	evals, err := s.EvalNames(t.Context(), names)
	if err != nil {
		t.Fatal(err)
	}

	manifests := s.Manifests()
	if len(manifests) != len(names) {
		t.Fatalf("suite produced %d manifests, want %d", len(manifests), len(names))
	}
	for _, m := range manifests {
		if err := oracle.CheckManifest(m); err != nil {
			t.Errorf("manifest %s: %v", m.Benchmark, err)
		}
	}

	for i, e := range evals {
		if e.Trace == nil {
			t.Fatalf("%s: evaluation kept no trace", names[i])
		}
		for _, v := range oracle.VerifyTrace(e.Trace, nil) {
			if v.Div != nil {
				t.Errorf("%s: %v", names[i], v.Div)
			}
			if v.Err != nil {
				t.Errorf("%s: %v", names[i], v.Err)
			}
		}
	}
}
