package oracle

import (
	"branchcost/internal/predict"
	"branchcost/internal/vm"
)

// RefTwoLevel is the reference two-level counter-based BTB, transcribed
// from the scheme's definition (a small L1 promoted into from a large L2;
// see internal/btb's btb2l) with the naive refBuffer on both levels. The
// L2 is the master copy — allocated and updated for every executed branch
// with the CBTB initialization — while L1 receives entries only by
// promotion on an L1-miss/L2-hit lookup, and is re-synced from L2 after
// every update of an L1-resident branch.
type RefTwoLevel struct {
	l1, l2    *refBuffer
	max       uint8
	threshold uint8
}

// NewRefTwoLevel returns a reference two-level BTB with the given per-level
// geometry and counter configuration.
func NewRefTwoLevel(l1Entries, l1Assoc, l2Entries, l2Assoc, bits int, threshold uint8) *RefTwoLevel {
	if bits < 1 || bits > 8 {
		panic("oracle: counter bits out of range")
	}
	maxC := uint8(1)<<bits - 1
	if threshold > maxC {
		panic("oracle: threshold exceeds counter max")
	}
	return &RefTwoLevel{
		l1:  newRefBuffer(l1Entries, l1Assoc),
		l2:  newRefBuffer(l2Entries, l2Assoc),
		max: maxC, threshold: threshold,
	}
}

// Name implements predict.Predictor.
func (t *RefTwoLevel) Name() string { return "oracle:btb2l" }

func (t *RefTwoLevel) decide(counter uint8, target int32) predict.Prediction {
	if counter >= t.threshold {
		return predict.Prediction{Taken: true, Target: target, Hit: true}
	}
	return predict.Prediction{Taken: false, Hit: true}
}

// Predict implements predict.Predictor.
func (t *RefTwoLevel) Predict(ev vm.BranchEvent) predict.Prediction {
	if e := t.l1.lookup(ev.PC); e != nil {
		return t.decide(e.counter, e.target)
	}
	if e2 := t.l2.lookup(ev.PC); e2 != nil {
		// Promote into L1; L2 keeps the state, so the eviction is harmless.
		e1 := t.l1.insert(ev.PC)
		e1.target, e1.counter = e2.target, e2.counter
		return t.decide(e1.counter, e1.target)
	}
	return predict.Prediction{Taken: false, Hit: false}
}

// Update implements predict.Predictor.
func (t *RefTwoLevel) Update(ev vm.BranchEvent) {
	e2 := t.l2.lookup(ev.PC)
	if e2 == nil {
		e2 = t.l2.insert(ev.PC)
		e2.target = -1
		if ev.Taken {
			e2.counter = t.threshold
			e2.target = ev.Target
		} else if t.threshold > 0 {
			e2.counter = t.threshold - 1
		}
	} else if ev.Taken {
		if e2.counter < t.max {
			e2.counter++
		}
		e2.target = ev.Target
	} else if e2.counter > 0 {
		e2.counter--
	}
	if e1 := t.l1.lookup(ev.PC); e1 != nil {
		e1.target, e1.counter = e2.target, e2.counter
	}
}

// Reset implements predict.Predictor.
func (t *RefTwoLevel) Reset() {
	t.l1.reset()
	t.l2.reset()
}
