package predict

// Per-scheme configuration. Every configurable scheme declares a typed
// config struct here and a Defaults constructor on its registry entry; the
// evaluation layers carry a ConfigSet (scheme name -> partial override) and
// resolve it per scheme with Resolved: registry defaults first, then the
// caller's per-field overrides, then a normalization pass that fills the
// fields whose default depends on other fields (the counter threshold's
// half-range rule).
//
// Default rule, shared with core.Config: fields whose zero value is never
// valid (table sizes, history lengths, counter widths) are plain ints where
// 0 means "use the scheme default". Fields whose zero value is meaningful —
// a counter threshold of 0 is a real sweep point — are pointers where nil
// means "derive the default"; build them with Ptr.

// SchemeConfig is the marker interface every typed scheme configuration
// implements. Concrete types are plain structs of int and *uint8 fields
// (possibly via embedded structs) tagged with `opt:"key"` names for the
// CLI's -scheme-opt flag.
type SchemeConfig interface{ schemeConfig() }

// Ptr returns a pointer to v, for pointer-valued config fields:
// predict.CounterConfig{Bits: 2, Threshold: predict.Ptr[uint8](0)}.
func Ptr[T any](v T) *T { return &v }

// BTBGeometry is the shared buffer shape: total entries and associativity
// (Assoc == Entries is the paper's fully-associative organization).
type BTBGeometry struct {
	Entries int `opt:"entries"`
	Assoc   int `opt:"assoc"`
}

// CounterConfig is the shared n-bit saturating counter: predicted taken
// when counter >= Threshold. A nil Threshold resolves to half the counter
// range (1 << (Bits-1)) — the paper's T = 2 at its 2-bit width — during
// normalization, so the threshold default follows the width per-field
// instead of only when the whole configuration is untouched.
type CounterConfig struct {
	Bits      int    `opt:"bits"`
	Threshold *uint8 `opt:"threshold"`
}

// fill resolves the nil threshold to half the counter range.
func (c CounterConfig) fill() CounterConfig {
	if c.Threshold == nil && c.Bits > 0 {
		c.Threshold = Ptr(uint8(1) << (c.Bits - 1))
	}
	return c
}

// ThresholdValue returns the resolved threshold (half range when nil).
func (c CounterConfig) ThresholdValue() uint8 {
	return *c.fill().Threshold
}

// SBTBConfig configures the Simple Branch Target Buffer scheme ("sbtb").
type SBTBConfig struct {
	BTBGeometry
}

func (SBTBConfig) schemeConfig() {}

// CBTBConfig configures the Counter-based BTB scheme ("cbtb").
type CBTBConfig struct {
	BTBGeometry
	CounterConfig
}

func (CBTBConfig) schemeConfig() {}

func (c CBTBConfig) normalize() SchemeConfig {
	c.CounterConfig = c.CounterConfig.fill()
	return c
}

// TwoLevelConfig configures the two-level BTB scheme ("btb2l"): per-level
// geometry plus the shared counter configuration of the L2 master copy.
type TwoLevelConfig struct {
	L1Entries int `opt:"l1-entries"`
	L1Assoc   int `opt:"l1-assoc"`
	L2Entries int `opt:"l2-entries"`
	L2Assoc   int `opt:"l2-assoc"`
	CounterConfig
}

func (TwoLevelConfig) schemeConfig() {}

func (c TwoLevelConfig) normalize() SchemeConfig {
	c.CounterConfig = c.CounterConfig.fill()
	return c
}

// HistoryConfig configures the history-indexed counter-table schemes:
// "gshare" (global history XORed into the table index; Sites unused) and
// "local" (per-site history table of 1<<Sites entries indexing the pattern
// table). History is the history length in bits, Table the log2 pattern
// table size, and the counter fields the per-entry saturating counter. The
// target side is a CBTB-style target cache of TargetEntries/TargetAssoc.
type HistoryConfig struct {
	History int `opt:"history"`
	Sites   int `opt:"sites"`
	Table   int `opt:"table"`
	CounterConfig
	TargetEntries int `opt:"target-entries"`
	TargetAssoc   int `opt:"target-assoc"`
}

func (HistoryConfig) schemeConfig() {}

func (c HistoryConfig) normalize() SchemeConfig {
	c.CounterConfig = c.CounterConfig.fill()
	return c
}

// PerceptronConfig configures the perceptron scheme: one weight vector of
// History+1 signed WeightBits-wide weights per table row (bias included),
// dotted with the global history.
type PerceptronConfig struct {
	History       int `opt:"history"`
	Table         int `opt:"table"`
	WeightBits    int `opt:"weight-bits"`
	TargetEntries int `opt:"target-entries"`
	TargetAssoc   int `opt:"target-assoc"`
}

func (PerceptronConfig) schemeConfig() {}

// TAGEConfig configures the TAGE scheme: a 1<<Base bimodal base table and
// Tables tagged tables of 1<<Table entries each, with history lengths
// growing geometrically from MinHist to MaxHist. Bits is the prediction
// counter width (threshold fixed at half range), UBits the usefulness
// counter width, TagBits the partial tag width.
type TAGEConfig struct {
	Tables        int `opt:"tables"`
	Base          int `opt:"base"`
	Table         int `opt:"table"`
	TagBits       int `opt:"tag"`
	MinHist       int `opt:"min-hist"`
	MaxHist       int `opt:"max-hist"`
	Bits          int `opt:"bits"`
	UBits         int `opt:"ubits"`
	TargetEntries int `opt:"target-entries"`
	TargetAssoc   int `opt:"target-assoc"`
}

func (TAGEConfig) schemeConfig() {}

// normalizer lets a config type fill fields whose default depends on other
// fields, after defaults and overrides have merged.
type normalizer interface{ normalize() SchemeConfig }

// ConfigSet maps scheme names to per-scheme configuration overrides. The
// zero value (or nil) resolves every scheme to its registry defaults — the
// paper's configuration for the paper's schemes.
type ConfigSet map[string]SchemeConfig

// Resolved returns the named scheme's effective configuration: the registry
// Defaults, overridden per-field by the set's entry (zero/nil fields keep
// the default), then normalized. Schemes without a Defaults constructor
// (the static baselines) resolve to the set's entry as-is, or nil.
func (cs ConfigSet) Resolved(name string) SchemeConfig {
	var def SchemeConfig
	if sc, ok := Lookup(name); ok && sc.Defaults != nil {
		def = sc.Defaults()
	}
	merged := Merge(def, cs[name])
	if n, ok := merged.(normalizer); ok {
		merged = n.normalize()
	}
	return merged
}

// MergeSets layers over on top of base, merging per-field where both sets
// configure the same scheme. Neither input is modified.
func MergeSets(base, over ConfigSet) ConfigSet {
	if len(over) == 0 {
		return base
	}
	out := make(ConfigSet, len(base)+len(over))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range over {
		out[k] = Merge(out[k], v)
	}
	return out
}
