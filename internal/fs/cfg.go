// Package fs implements the Forward Semantic, the paper's software scheme:
// profile-guided likely bits, Hwu–Chang trace selection, trace layout with
// branch inversion, and the forward-slot filling algorithm of §2.2,
// including the absorption of unlikely branches into slots and NO-OP padding
// of short copies. It also provides the code-expansion accounting behind the
// paper's Table 5.
package fs

import (
	"fmt"
	"sort"

	"branchcost/internal/isa"
	"branchcost/internal/profile"
)

// ArcKind classifies a control-flow edge.
type ArcKind uint8

// Arc kinds.
const (
	ArcFall  ArcKind = iota // plain fall-through (no terminator)
	ArcNot                  // conditional branch not taken
	ArcTaken                // conditional branch taken
	ArcJump                 // direct jump
	ArcIndirect
)

// Arc is a weighted control-flow edge between blocks.
type Arc struct {
	Src, Dst int // block indices
	Weight   int64
	Kind     ArcKind
}

// Block is a basic block: a maximal straight-line range of instructions
// [Start, End) by instruction ID.
type Block struct {
	Index      int
	Start, End int32
	Weight     int64
	Succs      []*Arc
	Preds      []*Arc
	FuncEntry  bool
}

// Terminator returns the ID of the block's last instruction.
func (b *Block) Terminator() int32 { return b.End - 1 }

// CFG is the control-flow graph of a program with profile weights.
type CFG struct {
	Prog    *isa.Program
	Blocks  []*Block
	byStart map[int32]*Block
}

// BlockAt returns the block starting at instruction ID id, or nil.
func (g *CFG) BlockAt(id int32) *Block { return g.byStart[id] }

// BuildCFG partitions the untransformed program p into basic blocks and
// weights the arcs with prof (which may be empty: all weights zero). It
// returns an error if p has been transformed already.
func BuildCFG(p *isa.Program, prof *profile.Profile) (*CFG, error) {
	if p.Loc != nil {
		return nil, fmt.Errorf("fs: program already transformed")
	}
	n := int32(len(p.Code))

	leaders := map[int32]bool{0: true}
	mark := func(id int32) {
		if id >= 0 && id < n {
			leaders[id] = true
		}
	}
	for _, f := range p.Funcs {
		mark(f.Entry)
	}
	for i, in := range p.Code {
		switch {
		case in.Op.IsCondBranch():
			mark(in.Target)
			mark(in.Fall)
		case in.Op == isa.JMP:
			mark(in.Target)
			mark(int32(i) + 1)
		case in.Op == isa.JMPI:
			for _, t := range in.Table {
				mark(t)
			}
			mark(int32(i) + 1)
		case in.Op == isa.RET || in.Op == isa.HALT:
			mark(int32(i) + 1)
		case in.Op == isa.CALL:
			mark(in.Target)
			// CALL does not end a block: control returns to the next
			// instruction, so the trace may flow through it.
		}
	}

	starts := make([]int32, 0, len(leaders))
	for id := range leaders {
		starts = append(starts, id)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	g := &CFG{Prog: p, byStart: map[int32]*Block{}}
	entrySet := map[int32]bool{}
	for _, f := range p.Funcs {
		entrySet[f.Entry] = true
	}
	for i, s := range starts {
		end := n
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		b := &Block{Index: i, Start: s, End: end, FuncEntry: entrySet[s] || s == 0}
		g.Blocks = append(g.Blocks, b)
		g.byStart[s] = b
	}

	// Arcs with profile weights.
	stat := func(id int32) *profile.BranchStat {
		if prof == nil {
			return nil
		}
		return prof.Branches[id]
	}
	addArc := func(src *Block, dstID int32, w int64, kind ArcKind) error {
		dst, ok := g.byStart[dstID]
		if !ok {
			return fmt.Errorf("fs: arc target %d is not a block leader", dstID)
		}
		a := &Arc{Src: src.Index, Dst: dst.Index, Weight: w, Kind: kind}
		src.Succs = append(src.Succs, a)
		dst.Preds = append(dst.Preds, a)
		return nil
	}
	for _, b := range g.Blocks {
		term := p.Code[b.Terminator()]
		switch {
		case term.Op.IsCondBranch():
			var taken, not int64
			if s := stat(b.Terminator()); s != nil {
				taken, not = s.Taken, s.NotTaken()
			}
			if err := addArc(b, term.Target, taken, ArcTaken); err != nil {
				return nil, err
			}
			if err := addArc(b, term.Fall, not, ArcNot); err != nil {
				return nil, err
			}
		case term.Op == isa.JMP:
			var w int64
			if s := stat(b.Terminator()); s != nil {
				w = s.Exec
			}
			if err := addArc(b, term.Target, w, ArcJump); err != nil {
				return nil, err
			}
		case term.Op == isa.JMPI:
			s := stat(b.Terminator())
			seen := map[int32]bool{}
			for _, t := range term.Table {
				if seen[t] {
					continue
				}
				seen[t] = true
				var w int64
				if s != nil {
					w = s.Targets[t]
				}
				if err := addArc(b, t, w, ArcIndirect); err != nil {
					return nil, err
				}
			}
		case term.Op == isa.RET || term.Op == isa.HALT:
			// No successors.
		default:
			// Plain fall-through into the next block; its weight is the
			// block's own weight, resolved below.
			if b.End < n {
				if err := addArc(b, b.End, -1, ArcFall); err != nil {
					return nil, err
				}
			}
		}
	}

	// Block weights: sum of incoming arc weights, plus call counts for
	// function entries. Plain-fall arcs (weight -1 so far) inherit the
	// predecessor's weight; they always point forward, so one ascending
	// pass resolves them.
	for _, b := range g.Blocks {
		var w int64
		if b.FuncEntry && prof != nil {
			w += prof.Calls[b.Start]
		}
		if b.Start == 0 && prof != nil {
			w += int64(prof.Runs) // the entry stub runs once per run
		}
		for _, a := range b.Preds {
			if a.Kind == ArcFall {
				w += g.Blocks[a.Src].Weight
			} else {
				w += a.Weight
			}
		}
		b.Weight = w
		for _, a := range b.Succs {
			if a.Kind == ArcFall {
				a.Weight = w
			}
		}
	}
	return g, nil
}

// bestSucc returns the heaviest outgoing arc of b, or nil.
func bestSucc(b *Block) *Arc {
	var best *Arc
	for _, a := range b.Succs {
		if best == nil || a.Weight > best.Weight {
			best = a
		}
	}
	return best
}

// bestPred returns the heaviest incoming arc of b, or nil.
func bestPred(b *Block) *Arc {
	var best *Arc
	for _, a := range b.Preds {
		if best == nil || a.Weight > best.Weight {
			best = a
		}
	}
	return best
}
