package compile

import (
	"branchcost/internal/isa"
	"branchcost/internal/lang"
)

// evalReg maps an evaluation-stack depth to an architectural register.
func evalReg(depth int) uint8 { return uint8(isa.EvalBase + depth) }

func (fc *funcCtx) checkDepth(depth, line int) error {
	if depth >= isa.EvalRegs {
		return errf(line, "expression too complex (evaluation depth %d)", depth)
	}
	return nil
}

// expr compiles e, leaving its value in evalReg(depth). Registers below
// depth are treated as live across the compilation.
func (fc *funcCtx) expr(e lang.Expr, depth int) error {
	if err := fc.checkDepth(depth, exprLine(e)); err != nil {
		return err
	}
	d := evalReg(depth)
	switch x := e.(type) {
	case *lang.IntLit:
		fc.c.emit(isa.Inst{Op: isa.LDI, Rd: d, Imm: x.Val}, x.Line)
		return nil

	case *lang.StrLit:
		addr := fc.c.internString(x.Val)
		fc.c.emit(isa.Inst{Op: isa.LDI, Rd: d, Imm: addr}, x.Line)
		return nil

	case *lang.Ident:
		return fc.loadVar(x.Name, d, x.Line)

	case *lang.IndexExpr:
		if err := fc.expr(x.Base, depth); err != nil {
			return err
		}
		// Constant index folds into the load displacement.
		if lit, ok := x.Index.(*lang.IntLit); ok {
			fc.c.emit(isa.Inst{Op: isa.LD, Rd: d, Rs: d, Imm: lit.Val}, x.Line)
			return nil
		}
		if err := fc.expr(x.Index, depth+1); err != nil {
			return err
		}
		fc.c.emit(isa.Inst{Op: isa.ADD, Rd: d, Rs: d, Rt: evalReg(depth + 1)}, x.Line)
		fc.c.emit(isa.Inst{Op: isa.LD, Rd: d, Rs: d, Imm: 0}, x.Line)
		return nil

	case *lang.UnaryExpr:
		if err := fc.expr(x.X, depth); err != nil {
			return err
		}
		switch x.Op {
		case lang.NOT:
			fc.c.emit(isa.Inst{Op: isa.SEQ, Rd: d, Rs: d, Rt: isa.RZ}, x.Line)
		case lang.MINUS:
			fc.c.emit(isa.Inst{Op: isa.SUB, Rd: d, Rs: isa.RZ, Rt: d}, x.Line)
		case lang.TILDE:
			if err := fc.checkDepth(depth+1, x.Line); err != nil {
				return err
			}
			t := evalReg(depth + 1)
			fc.c.emit(isa.Inst{Op: isa.LDI, Rd: t, Imm: -1}, x.Line)
			fc.c.emit(isa.Inst{Op: isa.XOR, Rd: d, Rs: d, Rt: t}, x.Line)
		default:
			return errf(x.Line, "unhandled unary operator %v", x.Op)
		}
		return nil

	case *lang.BinaryExpr:
		return fc.binaryExpr(x, depth)

	case *lang.CallExpr:
		return fc.call(x, depth)
	}
	return errf(exprLine(e), "unhandled expression %T", e)
}

// immForm returns the immediate-operand opcode for op, if one exists.
func immForm(op isa.Op) (isa.Op, bool) {
	switch op {
	case isa.ADD:
		return isa.ADDI, true
	case isa.MUL:
		return isa.MULI, true
	case isa.AND:
		return isa.ANDI, true
	case isa.OR:
		return isa.ORI, true
	case isa.SHL:
		return isa.SHLI, true
	case isa.SHR:
		return isa.SHRI, true
	case isa.SLT:
		return isa.SLTI, true
	}
	return 0, false
}

var arithOp = map[lang.Kind]isa.Op{
	lang.PLUS: isa.ADD, lang.MINUS: isa.SUB, lang.STAR: isa.MUL,
	lang.SLASH: isa.DIV, lang.PERCENT: isa.MOD,
	lang.AND: isa.AND, lang.OR: isa.OR, lang.XOR: isa.XOR,
	lang.SHL: isa.SHL, lang.SHR: isa.SHR,
}

func (fc *funcCtx) binaryExpr(x *lang.BinaryExpr, depth int) error {
	d := evalReg(depth)
	switch x.Op {
	case lang.ANDAND, lang.OROR:
		// Short-circuit evaluation materializing 0/1.
		falseL := fc.newLabel()
		endL := fc.newLabel()
		if err := fc.cond(x, depth, false, falseL); err != nil {
			return err
		}
		fc.c.emit(isa.Inst{Op: isa.LDI, Rd: d, Imm: 1}, x.Line)
		fc.jump(endL, x.Line)
		fc.bind(falseL)
		fc.c.emit(isa.Inst{Op: isa.LDI, Rd: d, Imm: 0}, x.Line)
		fc.bind(endL)
		return nil

	case lang.EQ, lang.NE, lang.LT, lang.LE, lang.GT, lang.GE:
		if err := fc.expr(x.X, depth); err != nil {
			return err
		}
		// x < const folds to SLTI.
		if lit, ok := x.Y.(*lang.IntLit); ok && x.Op == lang.LT {
			fc.c.emit(isa.Inst{Op: isa.SLTI, Rd: d, Rs: d, Imm: lit.Val}, x.Line)
			return nil
		}
		if err := fc.expr(x.Y, depth+1); err != nil {
			return err
		}
		t := evalReg(depth + 1)
		switch x.Op {
		case lang.EQ:
			fc.c.emit(isa.Inst{Op: isa.SEQ, Rd: d, Rs: d, Rt: t}, x.Line)
		case lang.NE:
			fc.c.emit(isa.Inst{Op: isa.SNE, Rd: d, Rs: d, Rt: t}, x.Line)
		case lang.LT:
			fc.c.emit(isa.Inst{Op: isa.SLT, Rd: d, Rs: d, Rt: t}, x.Line)
		case lang.LE:
			fc.c.emit(isa.Inst{Op: isa.SLE, Rd: d, Rs: d, Rt: t}, x.Line)
		case lang.GT:
			fc.c.emit(isa.Inst{Op: isa.SLT, Rd: d, Rs: t, Rt: d}, x.Line)
		case lang.GE:
			fc.c.emit(isa.Inst{Op: isa.SLE, Rd: d, Rs: t, Rt: d}, x.Line)
		}
		return nil
	}

	op, ok := arithOp[x.Op]
	if !ok {
		return errf(x.Line, "unhandled binary operator %v", x.Op)
	}
	if err := fc.expr(x.X, depth); err != nil {
		return err
	}
	if lit, ok := x.Y.(*lang.IntLit); ok {
		if iop, has := immForm(op); has {
			fc.c.emit(isa.Inst{Op: iop, Rd: d, Rs: d, Imm: lit.Val}, x.Line)
			return nil
		}
		if op == isa.SUB {
			fc.c.emit(isa.Inst{Op: isa.ADDI, Rd: d, Rs: d, Imm: -lit.Val}, x.Line)
			return nil
		}
	}
	if err := fc.expr(x.Y, depth+1); err != nil {
		return err
	}
	fc.c.emit(isa.Inst{Op: op, Rd: d, Rs: d, Rt: evalReg(depth + 1)}, x.Line)
	return nil
}

func (fc *funcCtx) call(x *lang.CallExpr, depth int) error {
	d := evalReg(depth)
	switch x.Name {
	case builtinGetc:
		if len(x.Args) != 0 {
			return errf(x.Line, "getc takes no arguments")
		}
		fc.c.emit(isa.Inst{Op: isa.IN, Rd: d}, x.Line)
		return nil
	case builtinPutc:
		if len(x.Args) != 1 {
			return errf(x.Line, "putc takes one argument")
		}
		if err := fc.expr(x.Args[0], depth); err != nil {
			return err
		}
		fc.c.emit(isa.Inst{Op: isa.OUT, Rs: d}, x.Line)
		return nil
	}

	fn, ok := fc.c.funcs[x.Name]
	if !ok {
		return errf(x.Line, "call of undefined function %s", x.Name)
	}
	if len(x.Args) != len(fn.Params) {
		return errf(x.Line, "%s takes %d arguments, got %d", x.Name, len(fn.Params), len(x.Args))
	}
	n := len(x.Args)
	if err := fc.checkDepth(depth+n, x.Line); err != nil {
		return err
	}

	// Evaluate arguments onto the stack above the live registers. Nested
	// calls inside the arguments spill recursively.
	for j, a := range x.Args {
		if err := fc.expr(a, depth+j); err != nil {
			return err
		}
	}
	// Spill live evaluation registers, then the arguments, below SP.
	for i := 0; i < depth; i++ {
		fc.c.emit(isa.Inst{Op: isa.ST, Rs: isa.SP, Imm: int64(-(1 + i)), Rt: evalReg(i)}, x.Line)
	}
	for j := 0; j < n; j++ {
		fc.c.emit(isa.Inst{Op: isa.ST, Rs: isa.SP, Imm: int64(-(depth + 1 + j)), Rt: evalReg(depth + j)}, x.Line)
	}
	if depth+n > 0 {
		fc.c.emit(isa.Inst{Op: isa.ADDI, Rd: isa.SP, Rs: isa.SP, Imm: int64(-(depth + n))}, x.Line)
	}
	at := fc.c.emit(isa.Inst{Op: isa.CALL}, x.Line)
	fc.c.callPatches = append(fc.c.callPatches, callPatch{at: at, name: x.Name, line: x.Line})
	if depth+n > 0 {
		fc.c.emit(isa.Inst{Op: isa.ADDI, Rd: isa.SP, Rs: isa.SP, Imm: int64(depth + n)}, x.Line)
	}
	for i := 0; i < depth; i++ {
		fc.c.emit(isa.Inst{Op: isa.LD, Rd: evalReg(i), Rs: isa.SP, Imm: int64(-(1 + i))}, x.Line)
	}
	fc.c.emit(isa.Inst{Op: isa.MOV, Rd: d, Rs: isa.RV}, x.Line)
	return nil
}

// cond compiles e for control flow: it branches to target when the truth of
// e equals whenTrue, and falls through otherwise. Registers below depth stay
// live.
func (fc *funcCtx) cond(e lang.Expr, depth int, whenTrue bool, target label) error {
	if err := fc.checkDepth(depth, exprLine(e)); err != nil {
		return err
	}
	switch x := e.(type) {
	case *lang.IntLit:
		if (x.Val != 0) == whenTrue {
			fc.jump(target, x.Line)
		}
		return nil

	case *lang.UnaryExpr:
		if x.Op == lang.NOT {
			return fc.cond(x.X, depth, !whenTrue, target)
		}

	case *lang.BinaryExpr:
		switch x.Op {
		case lang.ANDAND:
			if whenTrue {
				out := fc.newLabel()
				if err := fc.cond(x.X, depth, false, out); err != nil {
					return err
				}
				if err := fc.cond(x.Y, depth, true, target); err != nil {
					return err
				}
				fc.bind(out)
				return nil
			}
			if err := fc.cond(x.X, depth, false, target); err != nil {
				return err
			}
			return fc.cond(x.Y, depth, false, target)

		case lang.OROR:
			if whenTrue {
				if err := fc.cond(x.X, depth, true, target); err != nil {
					return err
				}
				return fc.cond(x.Y, depth, true, target)
			}
			out := fc.newLabel()
			if err := fc.cond(x.X, depth, true, out); err != nil {
				return err
			}
			if err := fc.cond(x.Y, depth, false, target); err != nil {
				return err
			}
			fc.bind(out)
			return nil

		case lang.EQ, lang.NE, lang.LT, lang.LE, lang.GT, lang.GE:
			if err := fc.expr(x.X, depth); err != nil {
				return err
			}
			if err := fc.expr(x.Y, depth+1); err != nil {
				return err
			}
			a, b := evalReg(depth), evalReg(depth+1)
			var op isa.Op
			switch x.Op {
			case lang.EQ:
				op = isa.BEQ
			case lang.NE:
				op = isa.BNE
			case lang.LT:
				op = isa.BLT
			case lang.LE:
				op = isa.BLE
			case lang.GT:
				op = isa.BGT
			case lang.GE:
				op = isa.BGE
			}
			if !whenTrue {
				op = op.Invert()
			}
			fc.branch(op, a, b, target, x.Line)
			return nil
		}
	}

	// General case: nonzero test.
	if err := fc.expr(e, depth); err != nil {
		return err
	}
	op := isa.BNE
	if !whenTrue {
		op = isa.BEQ
	}
	fc.branch(op, evalReg(depth), isa.RZ, target, exprLine(e))
	return nil
}

func exprLine(e lang.Expr) int {
	switch x := e.(type) {
	case *lang.IntLit:
		return x.Line
	case *lang.StrLit:
		return x.Line
	case *lang.Ident:
		return x.Line
	case *lang.IndexExpr:
		return x.Line
	case *lang.CallExpr:
		return x.Line
	case *lang.UnaryExpr:
		return x.Line
	case *lang.BinaryExpr:
		return x.Line
	}
	return 0
}
