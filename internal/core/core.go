// Package core orchestrates the paper's measurement pipeline as a
// record-once/replay-many engine: compile a benchmark, run one instrumented
// VM pass over its input suite that produces both the profile and an
// in-memory branch trace, then score every requested prediction scheme by
// replaying that trace in parallel. Schemes come from the predict.Scheme
// registry; transformed schemes (the Forward Semantic) additionally get one
// VM pass over the transformed binary, whose stream depends on the slot
// depth. With Config.Corpus set, the recording pass itself is served from
// the disk-backed trace corpus (internal/corpus) whenever an entry for the
// exact (program, input-suite) pair exists, so warm evaluations execute no
// VM at all for replayed schemes. The root branchcost package re-exports
// this API.
package core

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"branchcost/internal/attr"
	_ "branchcost/internal/btb" // registers the sbtb/cbtb/btb2l schemes
	"branchcost/internal/corpus"
	"branchcost/internal/fs"
	_ "branchcost/internal/history" // registers the history-based schemes
	"branchcost/internal/icache"
	"branchcost/internal/isa"
	"branchcost/internal/pipeline"
	"branchcost/internal/predict"
	"branchcost/internal/profile"
	"branchcost/internal/telemetry"
	"branchcost/internal/tracefile"
	"branchcost/internal/vm"
	"branchcost/internal/workloads"
)

// Config selects the hardware configuration of the BTB schemes, the slot
// depth used when materializing the Forward Semantic binary, and which
// registered schemes to score.
//
// Default rule: fields whose zero value is never valid (buffer geometry,
// counter width) are plain ints where 0 means "paper configuration".
// Sweepable fields whose zero value is meaningful — CounterThreshold: 0 is
// a real threshold, EvalSlots: 0 a real (degenerate) transform — are
// pointers where nil means "paper configuration"; build them with Ptr.
type Config struct {
	SBTBEntries int
	SBTBAssoc   int

	CBTBEntries int
	CBTBAssoc   int
	CounterBits int

	// Two-level BTB geometry (the "btb2l" scheme). Zero fields resolve to
	// predict.TwoLevelDefaults rather than the paper configuration — the
	// 1989 paper has no two-level organization to default to.
	BTBL1Entries int
	BTBL1Assoc   int
	BTBL2Entries int
	BTBL2Assoc   int

	// CounterThreshold is the CBTB taken threshold; nil means the paper's 2.
	CounterThreshold *uint8

	// EvalSlots is the k+ℓ used for the measured FS binary; nil means the
	// paper's 2. The measured accuracy is independent of it (slots never
	// execute), but the binary's layout and code growth depend on it.
	EvalSlots *int

	// FlushEvery, when positive, resets the predictors every N branches
	// (the context-switch ablation of the paper's §3 discussion). Stateless
	// schemes are unaffected — their Reset is a no-op.
	FlushEvery int64

	// CycleSim, when non-nil, runs the cycle-level pipeline simulator
	// alongside each scheme's evaluation (one simulator instance per
	// scheme, configured with these stage depths).
	CycleSim *pipeline.CycleSim

	// Schemes lists the registered predict.Scheme names to score, in report
	// order; nil means DefaultSchemes (the paper's three).
	Schemes []string

	// Corpus, when non-nil, is the disk-backed trace store Evaluate consults
	// before executing any VM pass: a hit supplies the recorded trace and
	// profile from disk, a miss records live and stores the result for every
	// later run. Only consulted when the profiling and evaluation suites are
	// identical (the paper's methodology), since an entry captures exactly
	// that shared pass.
	Corpus *corpus.Store

	// Telemetry, when non-nil, receives counters, gauges and spans for every
	// layer the evaluation touches (VM, trace codec, corpus, per-scheme
	// hit/miss totals). A set already present on the evaluation context takes
	// precedence; this field exists for callers without a context in hand.
	Telemetry *telemetry.Set

	// ICache, when non-nil, measures instruction-cache behaviour of the
	// Forward Semantic code expansion with that geometry: one pass over the
	// original binary and one over the transformed binary (through the
	// slot-substituting fetch model), reported as Eval.ICache. Costs two
	// extra VM runs per input; nil skips the measurement entirely.
	ICache *icache.Geometry

	// MaxVMSteps, when positive, bounds every VM run of the evaluation
	// (profiling, recording, and the FS measurement pass) to that many
	// dynamic instructions — the step-budget watchdog that converts a
	// runaway workload into a located trap instead of a hung suite. Zero
	// means the VM default (1<<34).
	MaxVMSteps int64

	// SchemeConfigs carries per-scheme configuration overrides (typically
	// parsed from -scheme-opt flags) layered over both the registry defaults
	// and the flat geometry fields above; an override here wins over both.
	SchemeConfigs predict.ConfigSet

	// Attribution, when non-nil, attaches a per-scheme attr.Recorder to every
	// evaluator (Evaluator.Obs): the evaluation then carries per-site and
	// per-window mispredict attribution in Eval.Attr, cross-checked against
	// each scheme's aggregate Stats. Nil keeps the observer seam disabled
	// (one nil check per scored event).
	Attribution *attr.Options
}

// Ptr returns a pointer to v, for the Config fields with pointer-or-nil
// default semantics: core.Config{CounterThreshold: core.Ptr[uint8](0)}.
func Ptr[T any](v T) *T { return &v }

// Paper is the configuration used throughout the paper's evaluation.
var Paper = Config{
	SBTBEntries: 256, SBTBAssoc: 256,
	CBTBEntries: 256, CBTBAssoc: 256,
	CounterBits: 2, CounterThreshold: Ptr[uint8](2),
	EvalSlots: Ptr(2),
}

// DefaultSchemes returns the paper's three schemes in its tables' order.
func DefaultSchemes() []string { return []string{"sbtb", "cbtb", "fs"} }

func (c Config) withDefaults() Config {
	d := c
	if d.SBTBEntries == 0 {
		d.SBTBEntries = Paper.SBTBEntries
	}
	if d.SBTBAssoc == 0 {
		d.SBTBAssoc = Paper.SBTBAssoc
	}
	if d.CBTBEntries == 0 {
		d.CBTBEntries = Paper.CBTBEntries
	}
	if d.CBTBAssoc == 0 {
		d.CBTBAssoc = Paper.CBTBAssoc
	}
	if d.CounterBits == 0 {
		d.CounterBits = Paper.CounterBits
	}
	if d.CounterThreshold == nil {
		d.CounterThreshold = Paper.CounterThreshold
	}
	if d.EvalSlots == nil {
		d.EvalSlots = Paper.EvalSlots
	}
	return d
}

// Configs returns the resolved per-scheme configuration set the registry's
// constructors consume: the flat geometry fields expressed as typed
// overrides, with Config.SchemeConfigs layered on top.
func (c Config) Configs() predict.ConfigSet {
	d := c.withDefaults()
	cs := predict.ConfigSet{
		"sbtb": predict.SBTBConfig{
			BTBGeometry: predict.BTBGeometry{Entries: d.SBTBEntries, Assoc: d.SBTBAssoc},
		},
		"cbtb": predict.CBTBConfig{
			BTBGeometry:   predict.BTBGeometry{Entries: d.CBTBEntries, Assoc: d.CBTBAssoc},
			CounterConfig: predict.CounterConfig{Bits: d.CounterBits, Threshold: d.CounterThreshold},
		},
		"btb2l": predict.TwoLevelConfig{
			L1Entries: d.BTBL1Entries, L1Assoc: d.BTBL1Assoc,
			L2Entries: d.BTBL2Entries, L2Assoc: d.BTBL2Assoc,
			CounterConfig: predict.CounterConfig{Bits: d.CounterBits, Threshold: d.CounterThreshold},
		},
	}
	return predict.MergeSets(cs, c.SchemeConfigs)
}

// SchemeResult is one scheme's score on one benchmark.
type SchemeResult struct {
	Stats predict.Stats
	Cycle *pipeline.CycleSim // nil unless Config.CycleSim was set

	// Extra holds scheme-internal capacity metrics (buffer inserts,
	// evictions, occupancy) for predictors implementing predict.MetricSource;
	// nil otherwise.
	Extra map[string]int64
}

// ICacheResult is the instruction-cache measurement of the Forward
// Semantic code expansion (Config.ICache): miss ratios of the original and
// transformed binaries over the same inputs, with the code growth that
// bought the difference.
type ICacheResult struct {
	Geometry icache.Geometry
	MissOrig float64
	MissFS   float64
	Growth   float64 // FS code growth, as a fraction of the original size
}

// Delta returns MissFS − MissOrig, the miss-ratio cost of the expansion.
func (r ICacheResult) Delta() float64 { return r.MissFS - r.MissOrig }

// Eval is the complete measurement of one benchmark.
type Eval struct {
	Name    string
	Program *isa.Program
	Profile *profile.Profile
	Summary profile.Summary

	// Order lists the scored scheme names in configuration order; Schemes
	// holds each one's result. The SBTB/CBTB/FS accessors cover the paper's
	// three.
	Order   []string
	Schemes map[string]SchemeResult

	// Trace is the recorded counted-branch stream of the original binary
	// over the evaluation inputs. Sweeps replay it (see Trace.ScoreParallel)
	// instead of re-running the VM per configuration point.
	Trace *tracefile.Trace

	// FSResult is the transform used for the FS measurement (layout, code
	// growth at Config.EvalSlots, trace statistics). Nil when no transformed
	// scheme was scored.
	FSResult *fs.Result

	// AnalyticFS is A_FS computed from the profile alone; it must equal
	// FS().Stats.Accuracy() when evaluation inputs equal profiling inputs.
	AnalyticFS float64

	// ICache holds the instruction-cache measurement of the FS code
	// expansion; nil unless Config.ICache was set and a transformed scheme
	// was scored.
	ICache *ICacheResult

	// Attr maps scheme name to its attribution summary (top mispredicting
	// sites, interval series); nil unless Config.Attribution was set.
	Attr map[string]*attr.Summary

	// FromCorpus reports that the profile and trace were loaded from
	// Config.Corpus instead of being recorded by VM execution.
	FromCorpus bool

	// CorpusKey is the content hash consulted when Config.Corpus was set
	// ("" otherwise), VMRuns the number of live VM executions this
	// evaluation performed (0 for a warm corpus with no transformed
	// scheme), WallNS its wall-clock time, and Phases the per-phase
	// breakdown. All four feed the run manifest (see Manifest).
	CorpusKey string
	VMRuns    int64
	WallNS    int64
	Phases    []PhaseTiming

	// Degraded lists everything this evaluation survived instead of failing
	// on — a quarantined corpus entry, a failed re-store — so a run's
	// provenance records exactly what was healed or skipped. Empty on a
	// clean run; carried into the manifest.
	Degraded []DegradeEvent

	cfg   Config // resolved configuration, for Manifest
	telem *telemetry.Set
}

// Scheme returns the named scheme's result (zero value when not scored).
func (e *Eval) Scheme(name string) SchemeResult { return e.Schemes[name] }

// SBTB returns the Simple BTB result.
func (e *Eval) SBTB() SchemeResult { return e.Schemes["sbtb"] }

// CBTB returns the Counter-based BTB result.
func (e *Eval) CBTB() SchemeResult { return e.Schemes["cbtb"] }

// FS returns the Forward Semantic result.
func (e *Eval) FS() SchemeResult { return e.Schemes["fs"] }

// cloneSim returns a fresh simulator with the same stage depths.
func cloneSim(cs *pipeline.CycleSim) *pipeline.CycleSim {
	if cs == nil {
		return nil
	}
	return cs.Clone()
}

// EvaluateBenchmark runs the full pipeline for one benchmark: a single
// profiling+recording pass over the original binary (all inputs), trace
// replay for every non-transformed scheme, and — for the Forward Semantic —
// the transform plus one measurement pass over the transformed binary.
func EvaluateBenchmark(b *workloads.Benchmark, cfg Config) (*Eval, error) {
	return EvaluateBenchmarkContext(context.Background(), b, cfg)
}

// EvaluateBenchmarkContext is EvaluateBenchmark with cancellation: ctx is
// checked between VM runs and during trace replay.
func EvaluateBenchmarkContext(ctx context.Context, b *workloads.Benchmark, cfg Config) (*Eval, error) {
	prog, err := b.Program()
	if err != nil {
		return nil, err
	}
	inputs := b.Inputs()
	return EvaluateContext(ctx, b.Name, prog, inputs, inputs, cfg)
}

// sameInputs reports whether the two suites are content-identical, in which
// case profiling and recording share one VM pass.
func sameInputs(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Evaluate runs the measurement pipeline for an arbitrary program:
// profiling on profInputs, scheme scoring on evalInputs. Passing the same
// slice for both reproduces the paper's methodology (§4: "the exact same
// benchmarks with the same inputs were used") and collapses profiling and
// trace recording into one pass.
func Evaluate(name string, prog *isa.Program, profInputs, evalInputs [][]byte, cfg Config) (*Eval, error) {
	return EvaluateContext(context.Background(), name, prog, profInputs, evalInputs, cfg)
}

// EvaluateContext is Evaluate with cancellation (checked between VM runs
// and periodically inside trace replay) and, when Config.Corpus is set,
// disk-backed trace reuse: a warm corpus supplies the profile and recorded
// trace without executing the VM, leaving the Forward Semantic's measurement
// pass over the transformed binary as the only live execution.
func EvaluateContext(ctx context.Context, name string, prog *isa.Program, profInputs, evalInputs [][]byte, cfg Config) (*Eval, error) {
	cfg = cfg.withDefaults()
	set := telemetry.FromContext(ctx)
	if set == nil && cfg.Telemetry != nil {
		set = cfg.Telemetry
		ctx = telemetry.NewContext(ctx, set)
	}
	wall := time.Now()
	ctx, evalSpan := telemetry.StartSpan(ctx, "core.evaluate:"+name)
	defer evalSpan.End()
	names := cfg.Schemes
	if len(names) == 0 {
		names = DefaultSchemes()
	}
	schemes := make([]predict.Scheme, len(names))
	anyTransformed := false
	for i, n := range names {
		sc, ok := predict.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("core: %s: unknown scheme %q (registered: %v)",
				name, n, predict.SortedNames())
		}
		for _, prev := range names[:i] {
			if prev == n {
				return nil, fmt.Errorf("core: %s: scheme %q listed twice", name, n)
			}
		}
		schemes[i] = sc
		anyTransformed = anyTransformed || sc.Transformed
	}
	e := &Eval{Name: name, Program: prog, Profile: profile.New(),
		Order: names, Schemes: make(map[string]SchemeResult, len(names)),
		cfg: cfg, telem: set}

	// Pass 1: profile the original binary. When the evaluation suite equals
	// the profiling suite, the same pass records the replay trace — and the
	// whole pass is what a corpus entry captures, so a warm corpus replaces
	// it with a disk load.
	same := sameInputs(profInputs, evalInputs)
	var key corpus.Key
	healing := false
	if same && cfg.Corpus != nil {
		key = corpus.KeyFor(name, prog, profInputs)
		e.CorpusKey = key.Hash
		start := time.Now()
		t, p, err := cfg.Corpus.LoadContext(ctx, key)
		switch {
		case err == nil:
			e.Trace, e.Profile, e.FromCorpus = t, p, true
			e.phase("corpus.load", start)
		case corpus.IsMiss(err):
			// Cold: fall through to the live recording pass.
		case corpus.IsTransient(err):
			// The entry may be intact; only this access failed. Re-recording
			// here would silently overwrite a good entry on a disk glitch, so
			// surface the error and let the scheduler retry the evaluation.
			return nil, fmt.Errorf("core: %s: corpus load: %w", name, err)
		default:
			// Located corruption (CRC failure, truncation, torn rename):
			// quarantine the damaged files for inspection, then heal by
			// falling through to live re-recording — warm-path corruption
			// becomes a logged slowdown, not a failure.
			healing = true
			e.degrade("corpus.load", "quarantine", err.Error())
			if qerr := cfg.Corpus.QuarantineContext(ctx, key); qerr != nil {
				// Best-effort: a failed quarantine still heals (the re-store
				// below overwrites in place), it just loses the evidence.
				e.degrade("corpus.load", "quarantine_failed", qerr.Error())
				telemetry.Logger(ctx).Warn("core: quarantine failed",
					"benchmark", name, "err", qerr)
			}
		}
	}
	if e.Trace == nil {
		tr := &tracefile.Trace{}
		col := &profile.Collector{P: e.Profile}
		phook := col.Hook()
		rec := tr.Hook()
		hook := phook
		if same {
			hook = func(ev vm.BranchEvent) {
				phook(ev)
				rec(ev)
			}
		}
		start := time.Now()
		pctx, span := telemetry.StartSpan(ctx, "core.profile")
		for i, in := range profInputs {
			if err := pctx.Err(); err != nil {
				span.End()
				return nil, err
			}
			res, err := vm.Run(prog, in, hook, vm.Config{Metrics: set, Ctx: pctx, MaxSteps: cfg.MaxVMSteps})
			if err != nil {
				span.End()
				return nil, fmt.Errorf("core: %s: profiling run %d: %w", name, i, err)
			}
			e.VMRuns++
			e.Profile.Steps += res.Steps
			e.Profile.Runs++
		}
		span.End()
		e.phase("profile", start)
		if same {
			tr.Steps, tr.Runs = e.Profile.Steps, e.Profile.Runs
			if cfg.Corpus != nil {
				start := time.Now()
				if err := cfg.Corpus.PutContext(ctx, key, tr, e.Profile); err != nil {
					// The trace is in memory and the evaluation can finish;
					// losing the store only costs the next run a re-record.
					e.degrade("corpus.store", "store_failed", err.Error())
					set.Counter("core.store_degraded").Inc()
					telemetry.Logger(ctx).Warn("core: corpus store failed, continuing",
						"benchmark", name, "err", err)
				} else if healing {
					e.degrade("corpus.store", "healed", "re-recorded after quarantine")
					set.Counter("core.heals").Inc()
				}
				e.phase("corpus.store", start)
			}
		} else {
			// Distinct evaluation suite: one recording pass over it.
			start := time.Now()
			rctx, span := telemetry.StartSpan(ctx, "core.record")
			for i, in := range evalInputs {
				if err := rctx.Err(); err != nil {
					span.End()
					return nil, err
				}
				res, err := vm.Run(prog, in, rec, vm.Config{Metrics: set, Ctx: rctx, MaxSteps: cfg.MaxVMSteps})
				if err != nil {
					span.End()
					return nil, fmt.Errorf("core: %s: recording run %d: %w", name, i, err)
				}
				e.VMRuns++
				tr.Steps += res.Steps
				tr.Runs++
			}
			span.End()
			e.phase("record", start)
		}
		e.Trace = tr
	}
	e.Summary = e.Profile.Summarize()
	e.AnalyticFS = e.Profile.StaticAccuracy()

	// The transform is shared by every transformed scheme.
	var fsRes *fs.Result
	if anyTransformed {
		start := time.Now()
		_, span := telemetry.StartSpan(ctx, "core.fs.transform")
		var err error
		fsRes, err = fs.Transform(prog, e.Profile, *cfg.EvalSlots)
		span.End()
		if err != nil {
			return nil, fmt.Errorf("core: %s: transform: %w", name, err)
		}
		e.FSResult = fsRes
		e.phase("fs.transform", start)
	}

	// Build one evaluator (and cycle simulator) per scheme, then score:
	// non-transformed schemes replay the recorded trace concurrently;
	// transformed schemes share one multiplexed pass over the transformed
	// binary, with synthetic fixup jumps excluded so every scheme scores
	// the same branch set.
	type job struct {
		name  string
		ev    *predict.Evaluator
		cycle *pipeline.CycleSim
		rec   *attr.Recorder // nil unless Config.Attribution was set
	}
	configs := cfg.Configs()
	jobs := make([]*job, len(schemes))
	var replayHooks []vm.BranchFunc
	var transformed []*job
	for i, sc := range schemes {
		sctx := predict.SchemeContext{Prog: prog, Profile: e.Profile, Configs: configs}
		if sc.Transformed {
			sctx.Prog = fsRes.Prog
		}
		j := &job{
			name:  names[i],
			ev:    &predict.Evaluator{P: sc.New(sctx), FlushEvery: cfg.FlushEvery},
			cycle: cloneSim(cfg.CycleSim),
		}
		if j.cycle != nil {
			cyc := j.cycle
			j.ev.OnResult = func(ev vm.BranchEvent, correct bool) {
				cyc.OnBranch(correct, ev.Op.IsCondBranch())
			}
		}
		if cfg.Attribution != nil {
			j.rec = attr.NewRecorder(*cfg.Attribution)
			j.ev.Obs = j.rec
		}
		jobs[i] = j
		if sc.Transformed {
			transformed = append(transformed, j)
		} else {
			replayHooks = append(replayHooks, j.ev.Hook())
		}
	}
	if len(replayHooks) > 0 {
		start := time.Now()
		rctx, span := telemetry.StartSpan(ctx, "core.replay")
		err := e.Trace.ScoreParallelContext(rctx, replayHooks...)
		span.End()
		if err != nil {
			return nil, err
		}
		e.phase("replay", start)
	}
	if len(transformed) > 0 {
		fsHook := func(ev vm.BranchEvent) {
			if fsRes.SyntheticID(ev.ID) {
				return
			}
			for _, j := range transformed {
				j.ev.Observe(ev)
			}
		}
		start := time.Now()
		fctx, span := telemetry.StartSpan(ctx, "core.fs.eval")
		for i, in := range evalInputs {
			if err := fctx.Err(); err != nil {
				span.End()
				return nil, err
			}
			if _, err := vm.Run(fsRes.Prog, in, fsHook, vm.Config{Metrics: set, Ctx: fctx, MaxSteps: cfg.MaxVMSteps}); err != nil {
				span.End()
				return nil, fmt.Errorf("core: %s: FS evaluation run %d: %w", name, i, err)
			}
			e.VMRuns++
		}
		span.End()
		e.phase("fs.eval", start)
	}
	if cfg.ICache != nil && fsRes != nil {
		start := time.Now()
		ictx, span := telemetry.StartSpan(ctx, "core.icache")
		orig := cfg.ICache.New()
		fsSim := cfg.ICache.New()
		fm := icache.NewFSFetch(fsRes.Prog, fsSim)
		for i, in := range evalInputs {
			if err := ictx.Err(); err != nil {
				span.End()
				return nil, err
			}
			if _, err := vm.Run(prog, in, nil, vm.Config{Trace: orig.Access, Metrics: set, Ctx: ictx, MaxSteps: cfg.MaxVMSteps}); err != nil {
				span.End()
				return nil, fmt.Errorf("core: %s: icache original run %d: %w", name, i, err)
			}
			if _, err := vm.Run(fsRes.Prog, in, nil, vm.Config{Trace: fm.Trace, Metrics: set, Ctx: ictx, MaxSteps: cfg.MaxVMSteps}); err != nil {
				span.End()
				return nil, fmt.Errorf("core: %s: icache FS run %d: %w", name, i, err)
			}
			e.VMRuns += 2
		}
		span.End()
		e.ICache = &ICacheResult{
			Geometry: *cfg.ICache,
			MissOrig: orig.MissRatio(), MissFS: fsSim.MissRatio(),
			Growth: fsRes.CodeGrowth(),
		}
		e.phase("icache", start)
	}
	for _, j := range jobs {
		res := SchemeResult{Stats: j.ev.S, Cycle: j.cycle}
		if ms, ok := j.ev.P.(predict.MetricSource); ok {
			res.Extra = ms.Metrics()
		}
		e.Schemes[j.name] = res
		if set != nil {
			// Scheme names are user-visible registry keys ("always-taken"),
			// not metric segments; sanitize before building metric names.
			seg := telemetry.MetricSegment(j.name)
			set.Counter("scheme." + seg + ".hits").Add(j.ev.S.Hits)
			set.Counter("scheme." + seg + ".misses").Add(j.ev.S.Misses)
			set.Counter("scheme." + seg + ".branches").Add(j.ev.S.Branches)
		}
		if j.rec != nil {
			if err := j.rec.Check(j.ev.S); err != nil {
				// A divergence here is an engine bug, never a workload
				// property; fail loudly rather than report wrong forensics.
				return nil, fmt.Errorf("core: %s: scheme %s: %w", name, j.name, err)
			}
			if e.Attr == nil {
				e.Attr = make(map[string]*attr.Summary, len(jobs))
			}
			e.Attr[j.name] = j.rec.Summarize(j.name, name)
			j.rec.FeedHistogram(set.Histogram("attr.site.mispredicts"))
		}
	}
	e.WallNS = time.Since(wall).Nanoseconds()
	telemetry.Logger(ctx).Debug("core: evaluated benchmark",
		"benchmark", name, "vm_runs", e.VMRuns, "from_corpus", e.FromCorpus,
		"wall_ns", e.WallNS)
	return e, nil
}

// phase appends one completed phase timing.
func (e *Eval) phase(name string, start time.Time) {
	e.Phases = append(e.Phases, PhaseTiming{Name: name, DurationNS: time.Since(start).Nanoseconds()})
}

// degrade appends one survived-degradation record.
func (e *Eval) degrade(phase, kind, detail string) {
	e.Degraded = append(e.Degraded, DegradeEvent{Phase: phase, Kind: kind, Detail: detail})
}

// Cost evaluates a frontend cost model for each scheme at the given
// operating point, returning SBTB, CBTB and FS costs. Any pipeline.CostModel
// works; the analytic pipeline.Config reproduces the paper's single-issue
// numbers, the wider models (pipeline.Superscalar, pipeline.VariableFetch)
// its superscalar extrapolations.
func (e *Eval) Cost(m pipeline.CostModel) (sbtb, cbtb, fsc float64) {
	return m.Cost(e.SBTB().Stats.Accuracy()),
		m.Cost(e.CBTB().Stats.Accuracy()),
		m.Cost(e.FS().Stats.Accuracy())
}
