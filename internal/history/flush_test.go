package history_test

import (
	"math/rand"
	"testing"

	"branchcost/internal/history"
	"branchcost/internal/oracle"
	"branchcost/internal/predict"
)

// historyMakers builds one fresh, small instance of each history scheme —
// small enough that aliasing and eviction are exercised within a few
// hundred events.
func historyMakers() map[string]func() predict.Predictor {
	return map[string]func() predict.Predictor{
		"gshare":     func() predict.Predictor { return history.NewGShare(8, 7, 2, 2, 16, 4) },
		"local":      func() predict.Predictor { return history.NewLocal(6, 5, 6, 2, 2, 16, 4) },
		"perceptron": func() predict.Predictor { return history.NewPerceptron(10, 5, 8, 16, 4) },
		"tage":       func() predict.Predictor { return history.NewTAGE(3, 5, 4, 6, 2, 16, 3, 2, 16, 4) },
	}
}

// TestFlushEveryEqualsChunkedFreshRuns pins the context-switch semantics of
// every history scheme: an Evaluator flushing every N branches must score
// exactly what N-event chunks each scored by a brand-new predictor score in
// total. Any state Reset fails to clear — a stale history bit, a warm
// counter, an unreset TAGE folded-history register — breaks the identity.
func TestFlushEveryEqualsChunkedFreshRuns(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for name, mk := range historyMakers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 50; trial++ {
				g := oracle.Generate(r, oracle.GenConfig{
					Sites:  6 + r.Intn(26),
					Events: 100 + r.Intn(400),
				})
				n := int64(20 + r.Intn(80))
				flushed := &predict.Evaluator{P: mk(), FlushEvery: n}
				for _, ev := range g.Events {
					flushed.Observe(ev)
				}
				var sum predict.Stats
				for lo := 0; lo < len(g.Events); lo += int(n) {
					hi := lo + int(n)
					if hi > len(g.Events) {
						hi = len(g.Events)
					}
					fresh := &predict.Evaluator{P: mk()}
					for _, ev := range g.Events[lo:hi] {
						fresh.Observe(ev)
					}
					sum.Branches += fresh.S.Branches
					sum.Correct += fresh.S.Correct
					sum.DirRight += fresh.S.DirRight
					sum.Hits += fresh.S.Hits
					sum.Misses += fresh.S.Misses
					sum.CondBranches += fresh.S.CondBranches
					sum.CondCorrect += fresh.S.CondCorrect
				}
				if flushed.S != sum {
					t.Fatalf("trial %d (flush every %d over %d events): flushed run %+v != stitched fresh chunks %+v",
						trial, n, len(g.Events), flushed.S, sum)
				}
			}
		})
	}
}

// TestFlushStormDegradesWithinRewarmup bounds how badly a context-switch
// storm may hurt a history scheme: the flushed accuracy can trail the
// unflushed one, but never by more than the warm-up exposure — at worst
// every one of the first min(warmup, chunk) branches after each flush is a
// miss that the unflushed run got right. With chunks much longer than the
// warm-up window, flushing must not destroy the scheme.
func TestFlushStormDegradesWithinRewarmup(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for name, mk := range historyMakers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			g := oracle.Generate(r, oracle.GenConfig{Sites: 12, Events: 6000})
			base := &predict.Evaluator{P: mk()}
			for _, ev := range g.Events {
				base.Observe(ev)
			}
			const every = 600
			flushed := &predict.Evaluator{P: mk(), FlushEvery: every}
			for _, ev := range g.Events {
				flushed.Observe(ev)
			}
			// Every post-flush branch could at worst flip from correct to
			// wrong while the tables re-warm; charge the whole chunk as the
			// (loose, provable) warm-up bound.
			flushes := float64((len(g.Events) - 1) / every)
			bound := flushes * every / float64(len(g.Events))
			drop := base.S.Accuracy() - flushed.S.Accuracy()
			if drop > bound {
				t.Fatalf("accuracy dropped %.4f under flushing, beyond the re-warmup bound %.4f (base %.4f, flushed %.4f)",
					drop, bound, base.S.Accuracy(), flushed.S.Accuracy())
			}
		})
	}
}

// TestStorageBitsPositiveAndMonotonic sanity-checks the storage accounting:
// every geometry reports positive state, and growing a table grows it.
func TestStorageBitsPositiveAndMonotonic(t *testing.T) {
	type sized interface{ StorageBits() int64 }
	small := []sized{
		history.NewGShare(8, 7, 2, 2, 16, 4),
		history.NewLocal(6, 5, 6, 2, 2, 16, 4),
		history.NewPerceptron(10, 5, 8, 16, 4),
		history.NewTAGE(3, 5, 4, 6, 2, 16, 3, 2, 16, 4),
	}
	big := []sized{
		history.NewGShare(12, 10, 2, 2, 64, 8),
		history.NewLocal(8, 8, 8, 2, 2, 64, 8),
		history.NewPerceptron(16, 8, 8, 64, 8),
		history.NewTAGE(4, 8, 7, 8, 2, 32, 3, 2, 64, 8),
	}
	for i := range small {
		s, b := small[i].StorageBits(), big[i].StorageBits()
		if s <= 0 {
			t.Errorf("predictor %d: non-positive storage %d", i, s)
		}
		if b <= s {
			t.Errorf("predictor %d: bigger geometry reports %d bits <= smaller's %d", i, b, s)
		}
	}
}
