package history

import "branchcost/internal/predict"

// The history-based schemes register here, following btb's pattern: the
// dependency points history -> predict, and core blank-imports this package
// so every registry consumer sees the full zoo.
func init() {
	predict.Register(predict.Scheme{
		Name:        "gshare",
		Description: "gshare: global history XORed into a shared counter table (McFarling)",
		Defaults: func() predict.SchemeConfig {
			return predict.HistoryConfig{
				History: 12, Table: 12,
				CounterConfig: predict.CounterConfig{Bits: 2},
				TargetEntries: 256, TargetAssoc: 256,
			}
		},
		New: func(ctx predict.SchemeContext) predict.Predictor {
			c := ctx.Config("gshare").(predict.HistoryConfig)
			return NewGShare(c.History, c.Table, c.Bits, *c.Threshold, c.TargetEntries, c.TargetAssoc)
		},
	})
	predict.Register(predict.Scheme{
		Name:        "local",
		Description: "two-level local: per-site history registers indexing a pattern table (Yeh/Patt)",
		Defaults: func() predict.SchemeConfig {
			return predict.HistoryConfig{
				History: 10, Sites: 10, Table: 10,
				CounterConfig: predict.CounterConfig{Bits: 2},
				TargetEntries: 256, TargetAssoc: 256,
			}
		},
		New: func(ctx predict.SchemeContext) predict.Predictor {
			c := ctx.Config("local").(predict.HistoryConfig)
			return NewLocal(c.History, c.Sites, c.Table, c.Bits, *c.Threshold, c.TargetEntries, c.TargetAssoc)
		},
	})
	predict.Register(predict.Scheme{
		Name:        "perceptron",
		Description: "perceptron: signed weight vectors dotted with global history (Jiménez/Lin)",
		Defaults: func() predict.SchemeConfig {
			return predict.PerceptronConfig{
				History: 16, Table: 8, WeightBits: 8,
				TargetEntries: 256, TargetAssoc: 256,
			}
		},
		New: func(ctx predict.SchemeContext) predict.Predictor {
			c := ctx.Config("perceptron").(predict.PerceptronConfig)
			return NewPerceptron(c.History, c.Table, c.WeightBits, c.TargetEntries, c.TargetAssoc)
		},
	})
	predict.Register(predict.Scheme{
		Name:        "tage",
		Description: "TAGE: tagged tables with geometric history lengths (Seznec/Michaud)",
		Defaults: func() predict.SchemeConfig {
			return predict.TAGEConfig{
				Tables: 4, Base: 11, Table: 9, TagBits: 8,
				MinHist: 4, MaxHist: 64, Bits: 3, UBits: 2,
				TargetEntries: 256, TargetAssoc: 256,
			}
		},
		New: func(ctx predict.SchemeContext) predict.Predictor {
			c := ctx.Config("tage").(predict.TAGEConfig)
			return NewTAGE(c.Tables, c.Base, c.Table, c.TagBits, c.MinHist, c.MaxHist,
				c.Bits, c.UBits, c.TargetEntries, c.TargetAssoc)
		},
	})
}
