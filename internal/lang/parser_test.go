package lang

import (
	"testing"
)

func parse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestParseGlobals(t *testing.T) {
	f := parse(t, `
var a;
var b = 5;
var c = -3;
var arr[10];
var arr2[4] = {1, 2, -3, 4};
var s = "hi";
var auto = {9, 8, 7};
`)
	if len(f.Globals) != 7 {
		t.Fatalf("globals = %d", len(f.Globals))
	}
	g := f.Globals
	if g[0].Size != 1 || g[0].Init != nil {
		t.Errorf("a: %+v", g[0])
	}
	if g[1].Init[0] != 5 || g[2].Init[0] != -3 {
		t.Errorf("scalar inits wrong")
	}
	if g[3].Size != 10 {
		t.Errorf("arr size %d", g[3].Size)
	}
	if g[4].Size != 4 || len(g[4].Init) != 4 || g[4].Init[2] != -3 {
		t.Errorf("arr2: %+v", g[4])
	}
	// String initializer: chars + terminator, size inferred.
	if g[5].Size != 3 || g[5].Init[0] != 'h' || g[5].Init[2] != 0 {
		t.Errorf("s: %+v", g[5])
	}
	if g[6].Size != 3 {
		t.Errorf("auto size: %+v", g[6])
	}
}

func TestParseFunctions(t *testing.T) {
	f := parse(t, `
func f() {}
func g(a, b, c) { return a; }
`)
	if len(f.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(f.Funcs))
	}
	if len(f.Funcs[0].Params) != 0 || len(f.Funcs[1].Params) != 3 {
		t.Fatal("params wrong")
	}
	if f.Funcs[1].Params[1] != "b" {
		t.Fatal("param names wrong")
	}
}

func TestParsePrecedence(t *testing.T) {
	f := parse(t, `func f() { return 1 + 2 * 3; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	add, ok := ret.X.(*BinaryExpr)
	if !ok || add.Op != PLUS {
		t.Fatalf("root is %T", ret.X)
	}
	mul, ok := add.Y.(*BinaryExpr)
	if !ok || mul.Op != STAR {
		t.Fatalf("rhs is %T", add.Y)
	}
}

func TestParsePrecedenceFull(t *testing.T) {
	// a || b && c | d ^ e & f == g < h << i + j * k
	// must nest right-to-left by precedence level.
	f := parse(t, `func f(a,b,c,d,e,g,h,i,j,k,m) { return a || b && c | d ^ e & g == h < i << j + k * m; }`)
	x := f.Funcs[0].Body.Stmts[0].(*ReturnStmt).X
	order := []Kind{OROR, ANDAND, OR, XOR, AND, EQ, LT, SHL, PLUS, STAR}
	for _, want := range order {
		bin, ok := x.(*BinaryExpr)
		if !ok {
			t.Fatalf("expected binary for %v, got %T", want, x)
		}
		if bin.Op != want {
			t.Fatalf("got %v, want %v", bin.Op, want)
		}
		x = bin.Y
	}
}

func TestParseAssociativity(t *testing.T) {
	// Left-associative: a - b - c = (a-b) - c.
	f := parse(t, `func f(a,b,c) { return a - b - c; }`)
	x := f.Funcs[0].Body.Stmts[0].(*ReturnStmt).X.(*BinaryExpr)
	inner, ok := x.X.(*BinaryExpr)
	if !ok || inner.Op != MINUS {
		t.Fatal("subtraction not left-associative")
	}
	if _, ok := x.Y.(*Ident); !ok {
		t.Fatal("rhs should be c")
	}
}

func TestParseUnaryAndPostfix(t *testing.T) {
	f := parse(t, `
var a[4];
func f(p) {
	a[1] = !p;
	a[p+1] = -p;
	a[a[0]] = ~p;
	f(f(1));
}`)
	body := f.Funcs[0].Body.Stmts
	as := body[0].(*AssignStmt)
	if _, ok := as.LHS.(*IndexExpr); !ok {
		t.Fatal("lhs not index")
	}
	if u := as.RHS.(*UnaryExpr); u.Op != NOT {
		t.Fatal("not unary !")
	}
	nested := body[2].(*AssignStmt).LHS.(*IndexExpr)
	if _, ok := nested.Index.(*IndexExpr); !ok {
		t.Fatal("nested index not parsed")
	}
	call := body[3].(*ExprStmt).X.(*CallExpr)
	if len(call.Args) != 1 {
		t.Fatal("call args")
	}
	if _, ok := call.Args[0].(*CallExpr); !ok {
		t.Fatal("nested call not parsed")
	}
}

func TestParseNegativeLiteralFolding(t *testing.T) {
	f := parse(t, `func f() { return -5; }`)
	lit, ok := f.Funcs[0].Body.Stmts[0].(*ReturnStmt).X.(*IntLit)
	if !ok || lit.Val != -5 {
		t.Fatalf("got %#v", f.Funcs[0].Body.Stmts[0].(*ReturnStmt).X)
	}
}

func TestParseStatements(t *testing.T) {
	f := parse(t, `
func f(n) {
	var x = 1;
	if (n) { x = 2; } else if (x) { x = 3; } else { x = 4; }
	while (n > 0) { n -= 1; continue; }
	do { n += 1; } while (n < 0);
	for (x = 0; x < 10; x += 1) { break; }
	for (;;) { break; }
	;
	return;
}`)
	body := f.Funcs[0].Body.Stmts
	if len(body) != 7 {
		t.Fatalf("stmt count = %d", len(body))
	}
	if d := body[0].(*LocalDecl); d.Name != "x" || d.Init == nil {
		t.Fatal("local decl")
	}
	ifst := body[1].(*IfStmt)
	if ifst.Else == nil {
		t.Fatal("else missing")
	}
	if _, ok := ifst.Else.(*IfStmt); !ok {
		t.Fatal("else-if chain broken")
	}
	forst := body[4].(*ForStmt)
	if forst.Init == nil || forst.Cond == nil || forst.Post == nil {
		t.Fatal("for parts missing")
	}
	forever := body[5].(*ForStmt)
	if forever.Init != nil || forever.Cond != nil || forever.Post != nil {
		t.Fatal("empty for parts should be nil")
	}
	ret := body[6].(*ReturnStmt)
	if ret.X != nil {
		t.Fatal("bare return must have nil expr")
	}
}

func TestParseSwitch(t *testing.T) {
	f := parse(t, `
func f(n) {
	switch (n * 2) {
	case 1:
	case 2:
		n = 1;
		break;
	case -3:
		n = 2;
	default:
		n = 3;
	}
}`)
	sw := f.Funcs[0].Body.Stmts[0].(*SwitchStmt)
	if len(sw.Cases) != 3 {
		t.Fatalf("cases = %d", len(sw.Cases))
	}
	if len(sw.Cases[0].Values) != 2 {
		t.Fatalf("shared labels = %v", sw.Cases[0].Values)
	}
	if sw.Cases[1].Values[0] != -3 {
		t.Fatal("negative case label")
	}
	if !sw.Cases[2].IsDefault {
		t.Fatal("default")
	}
}

func TestParseSwitchCaseThenDefaultShared(t *testing.T) {
	f := parse(t, `func f(n) { switch (n) { case 1: default: n = 0; } }`)
	sw := f.Funcs[0].Body.Stmts[0].(*SwitchStmt)
	if len(sw.Cases) != 1 || !sw.Cases[0].IsDefault || len(sw.Cases[0].Values) != 1 {
		t.Fatalf("shared case/default: %+v", sw.Cases[0])
	}
}

func TestParseCompoundAssign(t *testing.T) {
	ops := map[string]Kind{
		"+=": ADDA, "-=": SUBA, "*=": MULA, "/=": DIVA, "%=": MODA,
		"&=": ANDA, "|=": ORA, "^=": XORA, "=": ASSIGN,
	}
	for text, kind := range ops {
		f := parse(t, "func f(x) { x "+text+" 2; }")
		as := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
		if as.Op != kind {
			t.Errorf("%s parsed as %v", text, as.Op)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"var;",
		"var x",
		"var a[0];",
		"var a[-1];",
		"var a[2] = {1,2,3};",
		"func f( {}",
		"func f() { if (1) }",     // missing stmt... actually if(1)} -> stmt is }? -> error
		"func f() { while 1 {} }", // missing parens
		"func f() { do {} while 1; }",
		"func f() { switch (1) { foo } }",
		"func f() { switch (1) { case 1: break; default: default: } }",
		"func f() { 1 +; }",
		"func f() { (1; }",
		"func f() { a[1; }",
		"func f() { f(1,; }",
		"func f() { 3(); }",
		"garbage",
		"func f() {",
		"var s = ;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseLinesCounted(t *testing.T) {
	f := parse(t, "var a;\nvar b;\nfunc f() {}\n")
	if f.Lines != 4 {
		t.Fatalf("lines = %d", f.Lines)
	}
}
