package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"branchcost/internal/corpus"
	"branchcost/internal/experiments"
)

// APIError is the wire shape of every error the daemon returns: a stable
// machine-readable code, a human message, and — for evaluation failures —
// the benchmark, failing phase and attempt count from the suite's
// BenchError. RetryAfter (also sent as a Retry-After header) is advice for
// rate-limited and transiently-failed requests.
type APIError struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	Benchmark  string `json:"benchmark,omitempty"`
	Phase      string `json:"phase,omitempty"`
	Attempts   int    `json:"attempts,omitempty"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`

	status int
}

func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func apiErr(status int, code, format string, args ...any) *APIError {
	return &APIError{Code: code, Message: fmt.Sprintf(format, args...), status: status}
}

// writeError emits a structured JSON error response. The response always
// carries the code, so clients branch on it rather than parsing messages.
func (s *Server) writeError(w http.ResponseWriter, e *APIError) {
	s.set.Counter("serve.errors." + e.Code).Inc()
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	writeJSON(w, e.status, map[string]any{"error": e})
}

// evalError maps an evaluation failure to its API error. The suite's
// BenchError carries phase and attempts; the cause chain decides the code
// and status.
func evalError(err error) *APIError {
	var be *experiments.BenchError
	e := &APIError{status: http.StatusInternalServerError, Code: "eval_failed", Message: err.Error()}
	if errors.As(err, &be) {
		e.Benchmark, e.Phase, e.Attempts = be.Benchmark, be.Phase, be.Attempts
	}
	switch {
	case errors.Is(err, experiments.ErrEvalPanic):
		e.Code = "panic"
	case errors.Is(err, context.DeadlineExceeded):
		e.status, e.Code = http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, context.Canceled):
		e.status, e.Code = 499, "cancelled" // nginx's client-closed-request
	case corpus.IsTransient(err):
		e.status, e.Code, e.RetryAfter = http.StatusServiceUnavailable, "corpus_transient", 1
	case corpus.IsCorrupt(err):
		e.Code = "corpus_corrupt"
	case be != nil && be.Phase == "lookup":
		e.status, e.Code = http.StatusNotFound, "unknown_benchmark"
	}
	return e
}

// admit runs the full admission pipeline for an evaluation request:
// rate limit, drain check, queue bound, then an in-flight slot. On success
// it returns a release func the handler must call when the evaluation
// finishes; on rejection it returns the typed error to send.
func (s *Server) admit(r *http.Request) (release func(), aerr *APIError) {
	if !s.lim.allow(clientKey(r)) {
		s.set.Counter("serve.rejected_rate").Inc()
		e := apiErr(http.StatusTooManyRequests, "rate_limited",
			"client exceeded %g requests/sec (burst %d)", s.cfg.RatePerSec, s.cfg.Burst)
		e.RetryAfter = 1
		return nil, e
	}

	// Drain check and queue accounting are one critical section, so a drain
	// that begins here either sees this request in flight or rejects it —
	// never loses it.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.set.Counter("serve.rejected_draining").Inc()
		return nil, apiErr(http.StatusServiceUnavailable, "draining", "server is draining")
	}
	if s.queued >= int64(s.cfg.MaxQueue) {
		s.mu.Unlock()
		s.set.Counter("serve.rejected_queue").Inc()
		e := apiErr(http.StatusServiceUnavailable, "overloaded",
			"admission queue full (%d waiting, %d in flight)", s.queued, len(s.slots))
		e.RetryAfter = 2
		return nil, e
	}
	s.queued++
	s.inflight.Add(1)
	s.mu.Unlock()
	s.set.Gauge("serve.queue_depth").Set(s.queuedNow())

	leaveQueue := func() {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		s.set.Gauge("serve.queue_depth").Set(s.queuedNow())
	}

	select {
	case s.slots <- struct{}{}:
		leaveQueue()
		s.set.Gauge("serve.inflight").Set(int64(len(s.slots)))
		s.set.Gauge("serve.inflight_peak").RecordMax(int64(len(s.slots)))
		var once sync.Once
		return func() {
			once.Do(func() {
				<-s.slots
				s.set.Gauge("serve.inflight").Set(int64(len(s.slots)))
				s.inflight.Done()
			})
		}, nil
	case <-s.drainCh:
		leaveQueue()
		s.inflight.Done()
		s.set.Counter("serve.rejected_draining").Inc()
		return nil, apiErr(http.StatusServiceUnavailable, "draining", "server is draining")
	case <-r.Context().Done():
		leaveQueue()
		s.inflight.Done()
		return nil, apiErr(499, "cancelled", "client went away while queued")
	}
}

func (s *Server) queuedNow() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// clientKey identifies the client for rate limiting: an explicit API token
// when the request carries one (X-API-Token or Authorization: Bearer),
// otherwise the remote address without the ephemeral port.
func clientKey(r *http.Request) string {
	if tok := r.Header.Get("X-API-Token"); tok != "" {
		return "token:" + tok
	}
	if auth := r.Header.Get("Authorization"); auth != "" {
		if tok, ok := strings.CutPrefix(auth, "Bearer "); ok && tok != "" {
			return "token:" + tok
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// limiterPool hands out one token bucket per client key. Buckets refill at
// rate tokens/sec up to burst; a request spends one token. Idle buckets are
// pruned once the pool grows past a high-water mark, so an open-ended
// stream of distinct clients cannot grow memory without bound.
type limiterPool struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// pruneAbove bounds the pool: when exceeded, buckets idle long enough to
// have fully refilled (indistinguishable from fresh ones) are dropped.
const pruneAbove = 4096

func newLimiterPool(rate float64, burst int) *limiterPool {
	return &limiterPool{
		rate:    rate,
		burst:   float64(burst),
		buckets: map[string]*bucket{},
		now:     time.Now,
	}
}

// allow reports whether the keyed client may proceed, spending a token if
// so. A pool with no configured rate admits everything.
func (p *limiterPool) allow(key string) bool {
	if p.rate <= 0 {
		return true
	}
	now := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.buckets[key]
	if !ok {
		if len(p.buckets) >= pruneAbove {
			p.prune(now)
		}
		b = &bucket{tokens: p.burst, last: now}
		p.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * p.rate
	if b.tokens > p.burst {
		b.tokens = p.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func (p *limiterPool) prune(now time.Time) {
	refill := time.Duration(float64(time.Second) * p.burst / p.rate)
	for k, b := range p.buckets {
		if now.Sub(b.last) > refill {
			delete(p.buckets, k)
		}
	}
}
