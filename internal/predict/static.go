package predict

import (
	"branchcost/internal/isa"
	"branchcost/internal/profile"
	"branchcost/internal/vm"
)

// The static baselines discussed in the paper's introduction. None of them
// can supply a target for indirect jumps, so a taken prediction for a JMPI
// uses target -1 (always wrong), matching the "unknown target" problem the
// paper describes. Direct jumps are predicted perfectly by every scheme that
// predicts taken, because their target is in the instruction.

// staticBase implements the shared plumbing of stateless predictors.
type staticBase struct{}

func (staticBase) Update(vm.BranchEvent) {}
func (staticBase) Reset()                {}

// TargetResolver supplies a static predictor with the statically-known
// taken target of the branch at pc (-1 when no target is encodable, as for
// indirect jumps). ProgramTargets is the production resolver; trace-level
// harnesses (differential fuzzing against internal/oracle) substitute
// synthetic resolvers to score the statics without a compiled program.
type TargetResolver interface {
	TargetAt(pc int32) int32
}

// TargetFunc adapts a plain function to a TargetResolver.
type TargetFunc func(pc int32) int32

// TargetAt implements TargetResolver.
func (f TargetFunc) TargetAt(pc int32) int32 { return f(pc) }

// ProgramTargets adapts an isa.Program for static predictors, resolving
// direct branch targets to canonical code positions.
type ProgramTargets struct{ Prog *isa.Program }

// TargetAt returns the canonical position of the taken target of the
// instruction at pc, or -1 for indirect jumps.
func (p ProgramTargets) TargetAt(pc int32) int32 {
	in := p.Prog.Code[pc]
	switch {
	case in.Op.IsCondBranch(), in.Op == isa.JMP:
		return p.Prog.Canonical(in.Target)
	default:
		return -1
	}
}

// AlwaysTaken predicts every branch taken (to its static target).
type AlwaysTaken struct {
	staticBase
	Targets TargetResolver
}

// Name implements Predictor.
func (AlwaysTaken) Name() string { return "always-taken" }

// Predict implements Predictor.
func (a AlwaysTaken) Predict(ev vm.BranchEvent) Prediction {
	return Prediction{Taken: true, Target: a.Targets.TargetAt(ev.PC), Hit: true}
}

// AlwaysNotTaken predicts every branch not taken (the bare pipeline's
// behaviour when no scheme is present).
type AlwaysNotTaken struct{ staticBase }

// Name implements Predictor.
func (AlwaysNotTaken) Name() string { return "always-not-taken" }

// Predict implements Predictor.
func (AlwaysNotTaken) Predict(vm.BranchEvent) Prediction {
	return Prediction{Taken: false, Hit: true}
}

// BTFNT predicts backward branches taken and forward branches not taken
// (J. E. Smith's strategy; backward branches close loops). Unconditional
// jumps are predicted taken.
type BTFNT struct {
	staticBase
	Targets TargetResolver
}

// Name implements Predictor.
func (BTFNT) Name() string { return "btfnt" }

// Predict implements Predictor.
func (b BTFNT) Predict(ev vm.BranchEvent) Prediction {
	t := b.Targets.TargetAt(ev.PC)
	if ev.Op == isa.JMP || ev.Op == isa.JMPI {
		return Prediction{Taken: true, Target: t, Hit: true}
	}
	if t >= 0 && t <= ev.PC {
		return Prediction{Taken: true, Target: t, Hit: true}
	}
	return Prediction{Taken: false, Hit: true}
}

// LikelyBit predicts with the compiler's likely-taken bit carried in the
// instruction encoding — the Forward Semantic's prediction mechanism.
// Conditional branches follow the bit; direct jumps are taken; indirect
// jumps have no encodable target and thus always mispredict.
type LikelyBit struct {
	staticBase
	Targets TargetResolver
}

// Name implements Predictor.
func (LikelyBit) Name() string { return "forward-semantic" }

// Predict implements Predictor.
func (l LikelyBit) Predict(ev vm.BranchEvent) Prediction {
	switch {
	case ev.Op == isa.JMP:
		return Prediction{Taken: true, Target: l.Targets.TargetAt(ev.PC), Hit: true}
	case ev.Op == isa.JMPI:
		return Prediction{Taken: true, Target: -1, Hit: true}
	case ev.Likely:
		return Prediction{Taken: true, Target: l.Targets.TargetAt(ev.PC), Hit: true}
	default:
		return Prediction{Taken: false, Hit: true}
	}
}

// OpcodeBias predicts by branch opcode: each conditional opcode carries a
// fixed direction derived from aggregate profiling ("associate a prediction
// with the opcode of the branch instruction", stored in ROM or microcode in
// the paper's related work; reported 66.2%–86.7% accurate there). Build it
// from a profile with NewOpcodeBias.
type OpcodeBias struct {
	staticBase
	Targets TargetResolver
	taken   map[isa.Op]bool
}

// NewOpcodeBias derives the per-opcode directions from a profile.
func NewOpcodeBias(prof *profile.Profile, targets TargetResolver) OpcodeBias {
	exec := map[isa.Op]int64{}
	tkn := map[isa.Op]int64{}
	for _, b := range prof.Branches {
		if b.Op.IsCondBranch() {
			exec[b.Op] += b.Exec
			tkn[b.Op] += b.Taken
		}
	}
	taken := map[isa.Op]bool{}
	for op, e := range exec {
		taken[op] = tkn[op]*2 > e
	}
	return OpcodeBias{Targets: targets, taken: taken}
}

// Name implements Predictor.
func (OpcodeBias) Name() string { return "opcode-bias" }

// Predict implements Predictor.
func (o OpcodeBias) Predict(ev vm.BranchEvent) Prediction {
	switch {
	case ev.Op == isa.JMP:
		return Prediction{Taken: true, Target: o.Targets.TargetAt(ev.PC), Hit: true}
	case ev.Op == isa.JMPI:
		return Prediction{Taken: true, Target: -1, Hit: true}
	case o.taken[ev.Op]:
		return Prediction{Taken: true, Target: o.Targets.TargetAt(ev.PC), Hit: true}
	default:
		return Prediction{Taken: false, Hit: true}
	}
}
