package delay_test

import (
	"math"
	"testing"

	"branchcost/internal/compile"
	"branchcost/internal/delay"
	"branchcost/internal/profile"
	"branchcost/internal/vm"
)

func TestFillStatsBasic(t *testing.T) {
	src := `
var a[16];
func main() {
	var i; var x; var y;
	x = 0; y = 0;
	for (i = 0; i < 100; i += 1) {
		x = i * 3;      // movable work before the loop branch
		y = y + x;
		a[i % 16] = y;
	}
	putc('0' + y % 10);
}`
	p, err := compile.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.New()
	col := &profile.Collector{P: prof}
	if _, err := vm.Run(p, nil, col.Hook(), vm.Config{}); err != nil {
		t.Fatal(err)
	}

	s := delay.Analyze(p, prof, 2)
	if s.Branches == 0 {
		t.Fatal("no branches analyzed")
	}
	// Partition: before + target + nop must cover every (branch, slot).
	for i := 0; i < 2; i++ {
		if s.FromBefore[i]+s.FromTarget[i]+s.Nops[i] != s.Branches {
			t.Fatalf("slot %d partition broken: %d+%d+%d != %d",
				i, s.FromBefore[i], s.FromTarget[i], s.Nops[i], s.Branches)
		}
		if s.DynFromBefore[i]+s.DynFromTarget[i]+s.DynNops[i] != s.DynBranches {
			t.Fatalf("slot %d dynamic partition broken", i)
		}
	}
	// The second slot must never be easier to fill than the first.
	if s.FromBefore[1] > s.FromBefore[0] {
		t.Fatalf("slot 2 filled more often than slot 1: %d > %d",
			s.FromBefore[1], s.FromBefore[0])
	}
	if s.BeforeFillRate(0) <= 0 {
		t.Fatal("no slots filled from before despite movable work")
	}
}

// TestFillRateShape reproduces the McFarling–Hennessy observation on the
// benchmark suite: the first slot fills from before the branch far more
// often than the second.
func TestFillRateShape(t *testing.T) {
	src := `
var buf[64];
func weigh(v, w) { return v * w + (v >> 2); }
func main() {
	var i; var acc; var t1; var t2;
	acc = 0;
	for (i = 0; i < 200; i += 1) {
		t1 = weigh(i, 3);
		t2 = t1 + i * 7;
		buf[i % 64] = t2;
		if (t2 % 13 == 0) { acc += 1; }
		if (t2 % 7 == 0) { acc += 2; }
	}
	putc('0' + acc % 10);
}`
	p, err := compile.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.New()
	col := &profile.Collector{P: prof}
	if _, err := vm.Run(p, nil, col.Hook(), vm.Config{}); err != nil {
		t.Fatal(err)
	}
	s := delay.Analyze(p, prof, 2)
	r0, r1 := s.DynBeforeFillRate(0), s.DynBeforeFillRate(1)
	if r0 <= r1 {
		t.Fatalf("fill rates not decreasing: slot1 %.2f, slot2 %.2f", r0, r1)
	}
	t.Logf("dynamic fill-from-before rates: slot1 %.2f (MH86: ~0.70), slot2 %.2f (MH86: ~0.25)", r0, r1)
}

func TestCostModel(t *testing.T) {
	s := delay.FillStats{
		Slots:         2,
		DynBranches:   100,
		DynFromBefore: []int64{70, 25},
		DynFromTarget: []int64{25, 60},
		DynNops:       []int64{5, 15},
	}
	// nops/branch = 0.2, target slots/branch = 0.85.
	// a=1: cost = 1 + 0.2. a=0: cost = 1 + 0.2 + 0.85 + mbar.
	if got := s.Cost(1, 1); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("perfect-accuracy cost = %v", got)
	}
	if got := s.Cost(0, 1); math.Abs(got-3.05) > 1e-12 {
		t.Fatalf("zero-accuracy cost = %v", got)
	}
	var empty delay.FillStats
	if empty.Cost(0.9, 1) != 1 {
		t.Fatal("empty stats must cost 1")
	}
}

func TestAnalyzeWithoutProfile(t *testing.T) {
	p, err := compile.Compile(`func main() { var i; for (i=0;i<3;i+=1) { putc('x'); } }`)
	if err != nil {
		t.Fatal(err)
	}
	s := delay.Analyze(p, nil, 1)
	if s.Branches == 0 {
		t.Fatal("static analysis must work without a profile")
	}
	if s.DynBranches != 0 {
		t.Fatal("no dynamic weight expected")
	}
}
