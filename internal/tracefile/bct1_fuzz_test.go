package tracefile_test

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"branchcost/internal/tracefile"
	"branchcost/internal/vm"
)

// bct1Seed frames a payload of raw 16-byte event records under a BCT1
// header claiming count events — the count and the payload deliberately
// need not agree, so seeds can probe the truncation path.
func bct1Seed(count uint64, events []byte) []byte {
	s := append([]byte("BCT1"), binary.LittleEndian.AppendUint64(nil, count)...)
	return append(s, events...)
}

// FuzzBCT1Decode is the legacy-format twin of FuzzBCT2Decode: whatever the
// bytes, the fixed-width decoder must terminate without panicking, and any
// failure after a valid header must be a located error (event index + byte
// offset) — never a bare io.EOF misread as a clean end, never a silent
// truncation.
func FuzzBCT1Decode(f *testing.F) {
	tr, err := tracefile.Record(mustProgram(f), [][]byte{nil})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteFormat(&buf, tracefile.FormatBCT1); err != nil {
		f.Fatal(err)
	}
	enc := buf.Bytes()
	f.Add(enc)
	f.Add(enc[:len(enc)/2]) // stream cut mid-event: count says more
	f.Add(enc[:12])         // bare header, zero events delivered
	f.Add([]byte{})
	f.Add([]byte("BCT1"))
	// Adversarial seeds promoted from the decoder's validation table: each
	// one lands mutation directly inside a distinct rejection path.
	flipped := bytes.Clone(enc)
	flipped[len(flipped)/2] ^= 0xff // likely corrupts an op or flag byte
	f.Add(flipped)
	badOp := bytes.Clone(enc)
	badOp[12+12] = 0xee // first event's op byte: not a valid isa.Op
	f.Add(badOp)
	notBranch := bytes.Clone(enc)
	notBranch[12+12] = 0x01 // a valid op that is not a branch
	f.Add(notBranch)
	f.Add(bct1Seed(1<<40, nil))                  // count overflows the stream entirely
	f.Add(bct1Seed(2, enc[12:12+16]))            // count 2, one event present
	f.Add(bct1Seed(0, enc[12:12+16]))            // count 0, trailing bytes ignored
	f.Add(bct1Seed(1, make([]byte, 16)))         // all-zero event (op 0)
	f.Add(bct1Seed(1, append(enc[12:12+15], 3))) // nonzero pad byte
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := tracefile.NewReader(bytes.NewReader(data))
		if err != nil {
			return // header rejected: fine, as long as we got here without panic
		}
		err = r.Replay(func(vm.BranchEvent) {})
		if err != nil && !strings.Contains(err.Error(), "offset") {
			t.Fatalf("decode error lacks location: %v", err)
		}
		if err == nil && r.Remaining() != 0 {
			t.Fatalf("clean end with %d events still owed", r.Remaining())
		}
	})
}
