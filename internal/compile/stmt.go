package compile

import (
	"branchcost/internal/isa"
	"branchcost/internal/lang"
)

func (fc *funcCtx) stmt(s lang.Stmt) error {
	switch st := s.(type) {
	case nil:
		return nil
	case *lang.Block:
		for _, x := range st.Stmts {
			if err := fc.stmt(x); err != nil {
				return err
			}
		}
		return nil

	case *lang.LocalDecl:
		if st.Init == nil {
			return nil
		}
		if err := fc.expr(st.Init, 0); err != nil {
			return err
		}
		off := fc.locals[st.Name]
		fc.c.emit(isa.Inst{Op: isa.ST, Rs: isa.SP, Imm: off, Rt: evalReg(0)}, st.Line)
		return nil

	case *lang.AssignStmt:
		return fc.assign(st)

	case *lang.ExprStmt:
		return fc.expr(st.X, 0)

	case *lang.IfStmt:
		elseL := fc.newLabel()
		endL := fc.newLabel()
		if err := fc.cond(st.Cond, 0, false, elseL); err != nil {
			return err
		}
		if err := fc.stmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			fc.jump(endL, st.Line)
		}
		fc.bind(elseL)
		if st.Else != nil {
			if err := fc.stmt(st.Else); err != nil {
				return err
			}
		}
		fc.bind(endL)
		return nil

	case *lang.WhileStmt:
		// Top-tested loop, the shape 1989-era compilers emitted: a forward
		// conditional exit (not-taken while looping) plus an unconditional
		// backward jump. This is what gives the paper's benchmarks their
		// not-taken conditional majority (Table 2) and what BTFNT exploits.
		testL := fc.newLabel()
		endL := fc.newLabel()
		fc.bind(testL)
		if err := fc.cond(st.Cond, 0, false, endL); err != nil {
			return err
		}
		fc.breaksTo = append(fc.breaksTo, endL)
		fc.continueTo = append(fc.continueTo, testL)
		if err := fc.stmt(st.Body); err != nil {
			return err
		}
		fc.breaksTo = fc.breaksTo[:len(fc.breaksTo)-1]
		fc.continueTo = fc.continueTo[:len(fc.continueTo)-1]
		fc.jump(testL, st.Line)
		fc.bind(endL)
		return nil

	case *lang.DoWhileStmt:
		headL := fc.newLabel()
		testL := fc.newLabel()
		endL := fc.newLabel()
		fc.bind(headL)
		fc.breaksTo = append(fc.breaksTo, endL)
		fc.continueTo = append(fc.continueTo, testL)
		if err := fc.stmt(st.Body); err != nil {
			return err
		}
		fc.breaksTo = fc.breaksTo[:len(fc.breaksTo)-1]
		fc.continueTo = fc.continueTo[:len(fc.continueTo)-1]
		fc.bind(testL)
		if err := fc.cond(st.Cond, 0, true, headL); err != nil {
			return err
		}
		fc.bind(endL)
		return nil

	case *lang.ForStmt:
		// Top-tested, like while (see above).
		if err := fc.stmt(st.Init); err != nil {
			return err
		}
		testL := fc.newLabel()
		postL := fc.newLabel()
		endL := fc.newLabel()
		fc.bind(testL)
		if st.Cond != nil {
			if err := fc.cond(st.Cond, 0, false, endL); err != nil {
				return err
			}
		}
		fc.breaksTo = append(fc.breaksTo, endL)
		fc.continueTo = append(fc.continueTo, postL)
		if err := fc.stmt(st.Body); err != nil {
			return err
		}
		fc.breaksTo = fc.breaksTo[:len(fc.breaksTo)-1]
		fc.continueTo = fc.continueTo[:len(fc.continueTo)-1]
		fc.bind(postL)
		if err := fc.stmt(st.Post); err != nil {
			return err
		}
		fc.jump(testL, st.Line)
		fc.bind(endL)
		return nil

	case *lang.SwitchStmt:
		return fc.switchStmt(st)

	case *lang.BreakStmt:
		if len(fc.breaksTo) == 0 {
			return errf(st.Line, "break outside loop or switch")
		}
		fc.jump(fc.breaksTo[len(fc.breaksTo)-1], st.Line)
		return nil

	case *lang.ContinueStmt:
		if len(fc.continueTo) == 0 {
			return errf(st.Line, "continue outside loop")
		}
		fc.jump(fc.continueTo[len(fc.continueTo)-1], st.Line)
		return nil

	case *lang.ReturnStmt:
		if st.X != nil {
			if err := fc.expr(st.X, 0); err != nil {
				return err
			}
			fc.c.emit(isa.Inst{Op: isa.MOV, Rd: isa.RV, Rs: evalReg(0)}, st.Line)
		} else {
			fc.c.emit(isa.Inst{Op: isa.LDI, Rd: isa.RV, Imm: 0}, st.Line)
		}
		fc.jump(fc.epilogue, st.Line)
		return nil
	}
	return errf(0, "unhandled statement %T", s)
}

func (fc *funcCtx) assign(st *lang.AssignStmt) error {
	binOp := map[lang.Kind]isa.Op{
		lang.ADDA: isa.ADD, lang.SUBA: isa.SUB, lang.MULA: isa.MUL,
		lang.DIVA: isa.DIV, lang.MODA: isa.MOD,
		lang.ANDA: isa.AND, lang.ORA: isa.OR, lang.XORA: isa.XOR,
	}
	switch lhs := st.LHS.(type) {
	case *lang.Ident:
		// Scalar variable (local, param or global scalar).
		if st.Op == lang.ASSIGN {
			if err := fc.expr(st.RHS, 0); err != nil {
				return err
			}
			return fc.storeVar(lhs.Name, evalReg(0), st.Line)
		}
		if err := fc.loadVar(lhs.Name, evalReg(0), st.Line); err != nil {
			return err
		}
		if err := fc.expr(st.RHS, 1); err != nil {
			return err
		}
		fc.c.emit(isa.Inst{Op: binOp[st.Op], Rd: evalReg(0), Rs: evalReg(0), Rt: evalReg(1)}, st.Line)
		return fc.storeVar(lhs.Name, evalReg(0), st.Line)

	case *lang.IndexExpr:
		// Compute the word address once into reg 0.
		if err := fc.expr(lhs.Base, 0); err != nil {
			return err
		}
		if err := fc.expr(lhs.Index, 1); err != nil {
			return err
		}
		fc.c.emit(isa.Inst{Op: isa.ADD, Rd: evalReg(0), Rs: evalReg(0), Rt: evalReg(1)}, st.Line)
		if st.Op == lang.ASSIGN {
			if err := fc.expr(st.RHS, 1); err != nil {
				return err
			}
			fc.c.emit(isa.Inst{Op: isa.ST, Rs: evalReg(0), Imm: 0, Rt: evalReg(1)}, st.Line)
			return nil
		}
		fc.c.emit(isa.Inst{Op: isa.LD, Rd: evalReg(1), Rs: evalReg(0), Imm: 0}, st.Line)
		if err := fc.expr(st.RHS, 2); err != nil {
			return err
		}
		fc.c.emit(isa.Inst{Op: binOp[st.Op], Rd: evalReg(1), Rs: evalReg(1), Rt: evalReg(2)}, st.Line)
		fc.c.emit(isa.Inst{Op: isa.ST, Rs: evalReg(0), Imm: 0, Rt: evalReg(1)}, st.Line)
		return nil
	}
	return errf(st.Line, "invalid assignment target")
}

func (fc *funcCtx) switchStmt(st *lang.SwitchStmt) error {
	if len(st.Cases) == 0 {
		return fc.expr(st.Tag, 0) // evaluate for side effects
	}
	if err := fc.expr(st.Tag, 0); err != nil {
		return err
	}
	endL := fc.newLabel()
	defaultL := endL
	caseLabels := make([]label, len(st.Cases))
	for i, cs := range st.Cases {
		caseLabels[i] = fc.newLabel()
		if cs.IsDefault {
			defaultL = caseLabels[i]
		}
	}

	// Gather constant labels for table construction.
	var minV, maxV int64
	count := 0
	for _, cs := range st.Cases {
		for _, v := range cs.Values {
			if count == 0 || v < minV {
				minV = v
			}
			if count == 0 || v > maxV {
				maxV = v
			}
			count++
		}
	}

	rangeSize := maxV - minV + 1
	if count > 0 && rangeSize <= maxJumpTable && rangeSize <= 3*int64(count)+8 {
		// Dense: dispatch through a jump table (an indirect, unknown-target
		// branch — the paper's source of "unknown" unconditionals).
		e, t := evalReg(0), evalReg(1)
		fc.c.emit(isa.Inst{Op: isa.ADDI, Rd: e, Rs: e, Imm: -minV}, st.Line)
		fc.branch(isa.BLT, e, isa.RZ, defaultL, st.Line)
		fc.c.emit(isa.Inst{Op: isa.LDI, Rd: t, Imm: rangeSize}, st.Line)
		fc.branch(isa.BGE, e, t, defaultL, st.Line)
		at := fc.c.emit(isa.Inst{Op: isa.JMPI, Rs: e}, st.Line)
		tbl := make([]label, rangeSize)
		for i := range tbl {
			tbl[i] = defaultL
		}
		for i, cs := range st.Cases {
			for _, v := range cs.Values {
				tbl[v-minV] = caseLabels[i]
			}
		}
		fc.tables[at] = tbl
	} else {
		// Sparse: a compare chain.
		e, t := evalReg(0), evalReg(1)
		for i, cs := range st.Cases {
			for _, v := range cs.Values {
				fc.c.emit(isa.Inst{Op: isa.LDI, Rd: t, Imm: v}, cs.Line)
				fc.branch(isa.BEQ, e, t, caseLabels[i], cs.Line)
			}
		}
		fc.jump(defaultL, st.Line)
	}

	// Case bodies in order, with C fallthrough; break exits to endL.
	fc.breaksTo = append(fc.breaksTo, endL)
	for i, cs := range st.Cases {
		fc.bind(caseLabels[i])
		for _, s := range cs.Body {
			if err := fc.stmt(s); err != nil {
				return err
			}
		}
	}
	fc.breaksTo = fc.breaksTo[:len(fc.breaksTo)-1]
	fc.bind(endL)
	return nil
}

// loadVar loads the named scalar (or array base address) into register rd.
func (fc *funcCtx) loadVar(name string, rd uint8, line int) error {
	if off, ok := fc.locals[name]; ok {
		fc.c.emit(isa.Inst{Op: isa.LD, Rd: rd, Rs: isa.SP, Imm: off}, line)
		return nil
	}
	if g, ok := fc.c.globals[name]; ok {
		if g.array {
			fc.c.emit(isa.Inst{Op: isa.LDI, Rd: rd, Imm: g.addr}, line)
		} else {
			fc.c.emit(isa.Inst{Op: isa.LD, Rd: rd, Rs: isa.RZ, Imm: g.addr}, line)
		}
		return nil
	}
	return errf(line, "undefined variable %s", name)
}

func (fc *funcCtx) storeVar(name string, rs uint8, line int) error {
	if off, ok := fc.locals[name]; ok {
		fc.c.emit(isa.Inst{Op: isa.ST, Rs: isa.SP, Imm: off, Rt: rs}, line)
		return nil
	}
	if g, ok := fc.c.globals[name]; ok {
		if g.array {
			return errf(line, "cannot assign to array %s", name)
		}
		fc.c.emit(isa.Inst{Op: isa.ST, Rs: isa.RZ, Imm: g.addr, Rt: rs}, line)
		return nil
	}
	return errf(line, "undefined variable %s", name)
}
