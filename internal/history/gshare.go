package history

import (
	"fmt"

	"branchcost/internal/predict"
	"branchcost/internal/vm"
)

// GShare is McFarling's gshare: a single table of saturating counters
// indexed by the branch PC XORed with the global history register. The XOR
// spreads correlated branches across the table instead of letting the
// history bits displace PC bits.
type GShare struct {
	histLen  int
	tableLog int
	bits     int

	max       uint8
	threshold uint8
	hmask     uint32
	tmask     uint32

	hist  uint32
	ctr   []uint8
	cache targetCache
}

// NewGShare returns a gshare predictor with histLen history bits, a
// 1<<tableLog counter table and the given counter configuration, backed by
// a targetEntries/targetAssoc target cache.
func NewGShare(histLen, tableLog, bits int, threshold uint8, targetEntries, targetAssoc int) *GShare {
	if histLen < 1 || histLen > 32 {
		panic(fmt.Sprintf("history: gshare history %d out of range [1,32]", histLen))
	}
	if tableLog < 1 || tableLog > 30 {
		panic(fmt.Sprintf("history: gshare table log %d out of range [1,30]", tableLog))
	}
	maxC := counterMax(bits, threshold)
	return &GShare{
		histLen: histLen, tableLog: tableLog, bits: bits,
		max: maxC, threshold: threshold,
		hmask: lowMask(histLen), tmask: lowMask(tableLog),
		ctr:   make([]uint8, 1<<uint(tableLog)),
		cache: newTargetCache(targetEntries, targetAssoc),
	}
}

func (g *GShare) index(pc int32) uint32 {
	return (uint32(pc) ^ (g.hist & g.hmask)) & g.tmask
}

// Name implements predict.Predictor.
func (g *GShare) Name() string { return "gshare" }

// Predict implements predict.Predictor.
func (g *GShare) Predict(ev vm.BranchEvent) predict.Prediction {
	target, hit := g.cache.lookup(ev.PC)
	taken := true
	if ev.Op.IsCondBranch() {
		taken = g.ctr[g.index(ev.PC)] >= g.threshold
	}
	if taken {
		return predict.Prediction{Taken: true, Target: target, Hit: hit}
	}
	return predict.Prediction{Taken: false, Hit: hit}
}

// Update implements predict.Predictor.
func (g *GShare) Update(ev vm.BranchEvent) {
	if ev.Op.IsCondBranch() {
		c := &g.ctr[g.index(ev.PC)]
		if ev.Taken {
			if *c < g.max {
				*c++
			}
		} else if *c > 0 {
			*c--
		}
		g.hist = pushBit(g.hist, ev.Taken)
	}
	g.cache.update(ev)
}

// Reset implements predict.Predictor.
func (g *GShare) Reset() {
	g.hist = 0
	for i := range g.ctr {
		g.ctr[i] = 0
	}
	g.cache.reset()
}

// StorageBits implements predict.StorageSized: the history register, the
// counter table and the target cache.
func (g *GShare) StorageBits() int64 {
	return int64(g.histLen) + int64(len(g.ctr))*int64(g.bits) + g.cache.storageBits()
}

// Metrics implements predict.MetricSource.
func (g *GShare) Metrics() map[string]int64 {
	m := g.cache.metrics()
	m["storage_bits"] = g.StorageBits()
	return m
}
