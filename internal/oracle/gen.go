package oracle

import (
	"math/rand"

	"branchcost/internal/isa"
	"branchcost/internal/tracefile"
	"branchcost/internal/vm"
)

// GenConfig sizes a generated random trace.
type GenConfig struct {
	Sites  int // distinct static branch sites
	Events int // dynamic branch events
}

// Generated is one random branch trace in both representations the
// differential engine consumes: the raw event slice and the compact
// tracefile.Trace recorded from it (bit-identical on replay — the VM's
// contract that a site's per-direction targets never vary is preserved by
// construction), plus the target resolver its static sites imply.
type Generated struct {
	Events  []vm.BranchEvent
	Targets TargetFunc

	sites []genSite
}

type genSite struct {
	pc, id      int32
	op          isa.Op
	likely      bool
	takenTarget int32 // fixed per site; JMPI draws a fresh target per event
	fallTarget  int32
	takenBias   int // percent chance a conditional goes taken
}

var condOps = []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLE, isa.BGT}

// Generate builds a seeded random trace: sites get distinct PCs, a mix of
// conditional and (in)direct-jump opcodes, fixed taken/fall-through
// targets, and a per-site taken bias so counter dynamics and buffer
// turnover both get exercised. Event sites are drawn with a skew toward
// early sites, giving every buffer geometry a mix of hot residents and
// cold evictees.
func Generate(r *rand.Rand, cfg GenConfig) *Generated {
	if cfg.Sites <= 0 {
		cfg.Sites = 16
	}
	if cfg.Events <= 0 {
		cfg.Events = 256
	}
	g := &Generated{sites: make([]genSite, cfg.Sites)}
	for i := range g.sites {
		s := &g.sites[i]
		// Distinct PCs spaced 2 apart leave room for pc+1 fall-throughs.
		s.pc = int32(2 * i)
		s.id = int32(1000 + i)
		switch roll := r.Intn(10); {
		case roll < 7:
			s.op = condOps[r.Intn(len(condOps))]
		case roll < 9:
			s.op = isa.JMP
		default:
			s.op = isa.JMPI
		}
		s.likely = r.Intn(2) == 0
		s.takenTarget = int32(r.Intn(4 * cfg.Sites))
		s.fallTarget = s.pc + 1
		s.takenBias = r.Intn(101)
	}
	g.Events = make([]vm.BranchEvent, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		// Squaring the draw skews toward low site indices (hot sites).
		s := &g.sites[(r.Intn(cfg.Sites)*r.Intn(cfg.Sites+1))%cfg.Sites]
		ev := vm.BranchEvent{PC: s.pc, ID: s.id, Op: s.op, Likely: s.likely}
		switch {
		case s.op == isa.JMPI:
			ev.Taken = true
			ev.Target = int32(r.Intn(4 * cfg.Sites))
		case s.op == isa.JMP:
			ev.Taken = true
			ev.Target = s.takenTarget
		case r.Intn(100) < s.takenBias:
			ev.Taken = true
			ev.Target = s.takenTarget
		default:
			ev.Taken = false
			ev.Target = s.fallTarget
		}
		g.Events = append(g.Events, ev)
	}
	bySite := make(map[int32]*genSite, len(g.sites))
	for i := range g.sites {
		bySite[g.sites[i].pc] = &g.sites[i]
	}
	g.Targets = func(pc int32) int32 {
		s, ok := bySite[pc]
		if !ok || s.op == isa.JMPI {
			return -1
		}
		return s.takenTarget
	}
	return g
}

// Trace records the generated events into a tracefile.Trace; its replay is
// bit-identical to Events.
func (g *Generated) Trace() *tracefile.Trace {
	tr := &tracefile.Trace{}
	for _, ev := range g.Events {
		tr.Record(ev)
	}
	return tr
}

// Shrink reduces a diverging event sequence to a small counterexample:
// greedy delta-debugging that removes chunks of events (halving the chunk
// size down to single events) as long as diverges still reports a
// scheme/oracle disagreement on the remainder. diverges must be a pure
// function of its argument — it is called with fresh predictor state each
// time. The result still diverges; when the input does not diverge it is
// returned unchanged.
func Shrink(events []vm.BranchEvent, diverges func([]vm.BranchEvent) bool) []vm.BranchEvent {
	cur := append([]vm.BranchEvent(nil), events...)
	if !diverges(cur) {
		return cur
	}
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(cur); {
			cand := append(append([]vm.BranchEvent(nil), cur[:start]...), cur[start+chunk:]...)
			if diverges(cand) {
				cur = cand
			} else {
				start += chunk
			}
		}
	}
	return cur
}
