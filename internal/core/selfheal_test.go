package core_test

import (
	"os"
	"path/filepath"
	"testing"

	"branchcost/internal/core"
	"branchcost/internal/corpus"
	"branchcost/internal/faultfs"
	"branchcost/internal/telemetry"
	"branchcost/internal/workloads"
)

// TestCorpusSelfHealing is the end-to-end self-healing acceptance test: a
// warm corpus entry is corrupted on disk, and the next evaluation must (a)
// quarantine it (counter increments, evidence preserved), (b) heal by live
// re-recording so subsequent loads hit again, and (c) score every scheme
// bit-identically to a clean-corpus run.
func TestCorpusSelfHealing(t *testing.T) {
	dir := t.TempDir()
	store, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Corpus: store}
	b, err := workloads.ByName("wc")
	if err != nil {
		t.Fatal(err)
	}
	nIn := int64(len(b.Inputs()))

	evalWith(t, "wc", cfg)                     // cold: populates the corpus
	clean, cleanRuns := evalWith(t, "wc", cfg) // warm, clean: the reference run
	if !clean.FromCorpus || cleanRuns != nIn {
		t.Fatalf("clean warm run: FromCorpus=%v runs=%d, want true/%d", clean.FromCorpus, cleanRuns, nIn)
	}

	// Damage the stored trace mid-file: the block CRC must catch it.
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	k := corpus.KeyFor("wc", prog, b.Inputs())
	path := store.TracePath(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	set := telemetry.New()
	healCfg := cfg
	healCfg.Telemetry = set
	healed, healedRuns := evalWith(t, "wc", healCfg)

	// (a) Quarantined: counter fired, evidence moved aside.
	snap := set.Snapshot().Counters
	if snap["corpus.quarantines"] != 1 {
		t.Fatalf("corpus.quarantines = %d, want 1 (snapshot %v)", snap["corpus.quarantines"], snap)
	}
	if snap["corpus.invalidations"] != 1 || snap["core.heals"] != 1 {
		t.Fatalf("invalidations=%d heals=%d, want 1/1", snap["corpus.invalidations"], snap["core.heals"])
	}
	ents, err := os.ReadDir(filepath.Join(dir, corpus.QuarantineDirName))
	if err != nil || len(ents) == 0 {
		t.Fatalf("no quarantined evidence on disk (err %v)", err)
	}

	// The healing run re-recorded live: full cold cost, not a corpus hit.
	if healed.FromCorpus {
		t.Fatal("healing run claims a corpus hit")
	}
	if healedRuns != 2*nIn {
		t.Fatalf("healing run cost %d VM runs, want %d (re-record + FS pass)", healedRuns, 2*nIn)
	}

	// The degradation is in the manifest, machine-readable.
	m := healed.Manifest()
	kinds := map[string]bool{}
	for _, d := range m.Degraded {
		kinds[d.Kind] = true
	}
	if !kinds["quarantine"] || !kinds["healed"] {
		t.Fatalf("manifest degradation events %+v lack quarantine/healed", m.Degraded)
	}

	// (c) Bit-identical scores against the clean run.
	for _, name := range healed.Order {
		if healed.Schemes[name].Stats != clean.Schemes[name].Stats {
			t.Fatalf("%s: healed stats differ from clean:\nhealed %+v\nclean  %+v",
				name, healed.Schemes[name].Stats, clean.Schemes[name].Stats)
		}
	}
	if healed.Summary != clean.Summary || healed.AnalyticFS != clean.AnalyticFS {
		t.Fatal("healed profile-derived figures differ from clean run")
	}

	// (b) The re-stored entry serves subsequent loads.
	again, againRuns := evalWith(t, "wc", cfg)
	if !again.FromCorpus || againRuns != nIn {
		t.Fatalf("post-heal run: FromCorpus=%v runs=%d, want true/%d", again.FromCorpus, againRuns, nIn)
	}
}

// TestCorpusTransientLoadPropagates: a transient I/O failure on the warm
// path must abort the evaluation (for the scheduler to retry) rather than
// silently re-record over a possibly-good entry.
func TestCorpusTransientLoadPropagates(t *testing.T) {
	dir := t.TempDir()
	clean, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	evalWith(t, "wc", core.Config{Corpus: clean}) // populate

	inj := faultfs.NewInjector(nil, faultfs.Plan{FailOpenAt: 1, EveryOpen: true, PathContains: "wc-"})
	store, err := corpus.OpenFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workloads.ByName("wc")
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.EvaluateBenchmark(b, core.Config{Corpus: store})
	if !corpus.IsTransient(err) {
		t.Fatalf("transient corpus failure surfaced as %v, want transient", err)
	}
	// The entry is untouched: the clean store still serves it.
	e, err := core.EvaluateBenchmark(b, core.Config{Corpus: clean})
	if err != nil || !e.FromCorpus {
		t.Fatalf("entry lost after transient failure: err=%v FromCorpus=%v", err, e.FromCorpus)
	}
}
