package core_test

import (
	"testing"

	"branchcost/internal/fs"
	"branchcost/internal/predict"
	"branchcost/internal/profile"
	"branchcost/internal/tracefile"
	"branchcost/internal/vm"
	"branchcost/internal/workloads"
)

// TestReplayEquivalence guards the engine's core invariant: for every
// benchmark and every registered scheme, replaying the recorded trace
// yields bit-identical predict.Stats to scoring the live vm.Run stream.
// Non-transformed schemes replay the original binary's trace; transformed
// schemes replay a trace of the transformed binary (synthetic fixups
// excluded, exactly as the live measurement excludes them).
func TestReplayEquivalence(t *testing.T) {
	benches := workloads.All()
	if testing.Short() {
		short := map[string]bool{"wc": true, "compress": true, "tee": true}
		var subset []*workloads.Benchmark
		for _, b := range benches {
			if short[b.Name] {
				subset = append(subset, b)
			}
		}
		benches = subset
	}
	for _, b := range benches {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := b.Program()
			if err != nil {
				t.Fatal(err)
			}
			inputs := b.Inputs()

			// Pass 1: record the trace and the profile in one pass.
			prof := profile.New()
			col := &profile.Collector{P: prof}
			tr, err := tracefile.Record(prog, inputs, col.Hook())
			if err != nil {
				t.Fatal(err)
			}

			ctx := predict.SchemeContext{Prog: prog, Profile: prof}
			type pair struct {
				name         string
				live, replay *predict.Evaluator
			}
			var plain, transformed []*pair
			for _, n := range predict.Names() {
				sc := predict.MustLookup(n)
				p := &pair{name: n}
				if sc.Transformed {
					transformed = append(transformed, p)
					continue
				}
				p.live = &predict.Evaluator{P: sc.New(ctx)}
				p.replay = &predict.Evaluator{P: sc.New(ctx)}
				plain = append(plain, p)
			}

			// Pass 2: live scoring of every non-transformed scheme.
			liveHook := func(ev vm.BranchEvent) {
				for _, p := range plain {
					p.live.Observe(ev)
				}
			}
			for _, in := range inputs {
				if _, err := vm.Run(prog, in, liveHook, vm.Config{}); err != nil {
					t.Fatal(err)
				}
			}
			hooks := make([]vm.BranchFunc, len(plain))
			for i, p := range plain {
				hooks[i] = p.replay.Hook()
			}
			tr.ScoreParallel(hooks...)
			for _, p := range plain {
				if p.live.S != p.replay.S {
					t.Errorf("%s: replay != live:\nlive   %+v\nreplay %+v", p.name, p.live.S, p.replay.S)
				}
			}

			// Pass 3: transformed schemes — record and score the transformed
			// binary's stream simultaneously, then replay.
			if len(transformed) == 0 {
				return
			}
			res, err := fs.Transform(prog, prof, 2)
			if err != nil {
				t.Fatal(err)
			}
			tctx := predict.SchemeContext{Prog: res.Prog, Profile: prof}
			for _, p := range transformed {
				sc := predict.MustLookup(p.name)
				p.live = &predict.Evaluator{P: sc.New(tctx)}
				p.replay = &predict.Evaluator{P: sc.New(tctx)}
			}
			ftr := &tracefile.Trace{}
			frec := ftr.Hook()
			fhook := func(ev vm.BranchEvent) {
				if res.SyntheticID(ev.ID) {
					return
				}
				frec(ev)
				for _, p := range transformed {
					p.live.Observe(ev)
				}
			}
			for _, in := range inputs {
				if _, err := vm.Run(res.Prog, in, fhook, vm.Config{}); err != nil {
					t.Fatal(err)
				}
			}
			for _, p := range transformed {
				ftr.Replay(p.replay.Hook())
				if p.live.S != p.replay.S {
					t.Errorf("%s: replay != live:\nlive   %+v\nreplay %+v", p.name, p.live.S, p.replay.S)
				}
			}
		})
	}
}
