package experiments

import (
	"context"
	"fmt"
	"sort"

	"branchcost/internal/attr"
	"branchcost/internal/core"
	"branchcost/internal/stats"
)

// Attribution is the suite-level mispredict forensics report: per scheme, the
// worst mispredicting sites aggregated across benchmarks, plus the overlap
// analysis — which sites defeat every scored scheme (structurally hard
// branches no prediction strategy captures) versus sites only one scheme
// loses on (scheme-specific weaknesses, e.g. BTB capacity evictions).
type Attribution struct {
	Schemes []SchemeAttribution `json:"schemes"`

	// SharedSites are sites among every scheme's top-K that mispredict under
	// all scored schemes; UniqueSites lists, per scheme, top-K sites no other
	// scheme has in its own top-K. Both orderings are deterministic.
	SharedSites []OverlapSite `json:"shared_sites,omitempty"`
	UniqueSites []OverlapSite `json:"unique_sites,omitempty"`
}

// SchemeAttribution is one scheme's suite-aggregated summary.
type SchemeAttribution struct {
	Scheme  string        `json:"scheme"`
	Summary *attr.Summary `json:"summary"`
}

// OverlapSite is one (benchmark, instruction ID) site in the overlap
// analysis, with the schemes whose top-K it appears in and its worst
// observed mispredict count. Sites match on the stable instruction ID, not
// the PC: transformed schemes (FS) score a relaid-out binary whose PCs share
// no address space with the original, while IDs survive the transform.
type OverlapSite struct {
	Benchmark   string   `json:"benchmark"`
	ID          int32    `json:"id"`
	PC          int32    `json:"pc"` // PC in the first scheme that ranked it
	Op          string   `json:"op,omitempty"`
	Schemes     []string `json:"schemes"`
	Mispredicts int64    `json:"mispredicts"` // max across schemes
}

// AttributionReport aggregates per-benchmark attribution across the named
// benchmarks. The suite's Config.Attribution must be set (it is forced on a
// copy here if not): every evaluation then carries per-scheme summaries,
// which are merged per scheme and re-ranked to topK sites suite-wide.
func AttributionReport(ctx context.Context, s *Suite, names []string, topK int) (*Attribution, error) {
	if topK <= 0 {
		topK = attr.DefaultTopK
	}
	if s.Cfg.Attribution == nil {
		// The suite was built without attribution: re-evaluate under a
		// derived suite that records it, keeping the scheduling knobs. Cached
		// attribution-free evaluations cannot be upgraded in place.
		cfg := s.Cfg
		cfg.Attribution = &attr.Options{TopK: topK}
		derived := NewSuite(cfg)
		derived.Workers, derived.Deadline = s.Workers, s.Deadline
		derived.Retries, derived.RetryBackoff = s.Retries, s.RetryBackoff
		derived.Lookup = s.Lookup
		s = derived
	}
	evals, err := s.EvalNames(ctx, names)
	if err != nil {
		return nil, err
	}
	return BuildAttribution(evals, topK)
}

// BuildAttribution builds the report from completed evaluations that carry
// attribution (Eval.Attr). Evaluations without it are an error — silently
// producing an empty report would read as "no mispredicting sites".
func BuildAttribution(evals []*core.Eval, topK int) (*Attribution, error) {
	if topK <= 0 {
		topK = attr.DefaultTopK
	}
	merged := map[string]*attr.Summary{}
	var order []string
	for _, e := range evals {
		if e == nil {
			continue
		}
		if e.Attr == nil {
			return nil, fmt.Errorf("experiments: benchmark %s evaluated without attribution (set core.Config.Attribution)", e.Name)
		}
		for _, scheme := range e.Order {
			sum := e.Attr[scheme]
			if sum == nil {
				continue
			}
			// Label each site with its benchmark before cross-benchmark
			// merging: the same PC in different programs is a different branch.
			labeled := *sum
			labeled.TopSites = append([]attr.SiteSummary(nil), sum.TopSites...)
			for i := range labeled.TopSites {
				labeled.TopSites[i].Benchmark = sum.Benchmark
			}
			if agg, ok := merged[scheme]; ok {
				agg.Merge(&labeled)
			} else {
				cp := labeled
				cp.Benchmark = ""
				merged[scheme] = &cp
				order = append(order, scheme)
			}
		}
	}
	rep := &Attribution{}
	for _, scheme := range order {
		sum := merged[scheme]
		sum.Rerank(topK)
		rep.Schemes = append(rep.Schemes, SchemeAttribution{Scheme: scheme, Summary: sum})
	}
	rep.SharedSites, rep.UniqueSites = overlap(rep.Schemes)
	return rep, nil
}

// overlap partitions the union of every scheme's top-K sites into the shared
// set (present in every scheme's top-K) and the per-scheme unique sets
// (present in exactly one), keyed by (benchmark, instruction ID).
func overlap(schemes []SchemeAttribution) (shared, unique []OverlapSite) {
	type key struct {
		bench string
		id    int32
	}
	seen := map[key]*OverlapSite{}
	var keys []key
	for _, sa := range schemes {
		for _, site := range sa.Summary.TopSites {
			k := key{site.Benchmark, site.ID}
			o, ok := seen[k]
			if !ok {
				o = &OverlapSite{Benchmark: site.Benchmark, ID: site.ID, PC: site.PC, Op: site.Op}
				seen[k] = o
				keys = append(keys, k)
			}
			o.Schemes = append(o.Schemes, sa.Scheme)
			if site.Mispredicts > o.Mispredicts {
				o.Mispredicts = site.Mispredicts
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := seen[keys[i]], seen[keys[j]]
		if a.Mispredicts != b.Mispredicts {
			return a.Mispredicts > b.Mispredicts
		}
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		return a.ID < b.ID
	})
	for _, k := range keys {
		o := seen[k]
		switch {
		case len(o.Schemes) == len(schemes) && len(schemes) > 1:
			shared = append(shared, *o)
		case len(o.Schemes) == 1:
			unique = append(unique, *o)
		}
	}
	return shared, unique
}

// Table renders the report: one suite-wide top-sites table per scheme, then
// the overlap partition.
func (a *Attribution) Table() *stats.Table {
	t := stats.NewTable("Mispredict attribution (suite top sites)",
		"scheme", "benchmark", "pc", "op", "mispredicts", "share", "rate")
	for _, sa := range a.Schemes {
		for _, site := range sa.Summary.TopSites {
			t.AddRow(sa.Scheme, site.Benchmark, fmt.Sprint(site.PC), site.Op,
				stats.Count(site.Mispredicts), stats.Pct(site.MispredictShare), stats.F3(site.Rate))
		}
		t.AddRule()
	}
	return t
}

// OverlapTable renders the shared-vs-unique site partition.
func (a *Attribution) OverlapTable() *stats.Table {
	t := stats.NewTable("Site overlap: defeats-all vs scheme-specific",
		"class", "benchmark", "site id", "op", "schemes", "worst mispredicts")
	for _, o := range a.SharedSites {
		t.AddRow("all-schemes", o.Benchmark, fmt.Sprint(o.ID), o.Op,
			fmt.Sprint(len(o.Schemes)), stats.Count(o.Mispredicts))
	}
	if len(a.SharedSites) > 0 && len(a.UniqueSites) > 0 {
		t.AddRule()
	}
	for _, o := range a.UniqueSites {
		t.AddRow("only:"+o.Schemes[0], o.Benchmark, fmt.Sprint(o.ID), o.Op,
			fmt.Sprint(len(o.Schemes)), stats.Count(o.Mispredicts))
	}
	return t
}
