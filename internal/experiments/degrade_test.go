package experiments_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"branchcost/internal/core"
	"branchcost/internal/corpus"
	"branchcost/internal/experiments"
	"branchcost/internal/faultfs"
	"branchcost/internal/telemetry"
	"branchcost/internal/workloads"
)

// hungBenchmark is a synthetic workload that never halts — the hung-suite
// member of the degrade-don't-die acceptance test. Only the per-benchmark
// deadline (vm.Config.Ctx polling) can kill it.
func hungBenchmark() *workloads.Benchmark {
	return &workloads.Benchmark{
		Name: "hung",
		Runs: 1,
		Sources: []string{`
func main() {
	var i;
	i = 0;
	while (i < 1) {
		i = i * 1;
	}
	return 0;
}
`},
		Input: func(int) []byte { return nil },
	}
}

// TestSuiteDegradeDontDie is the suite-level acceptance test: a fan-out over
// N benchmarks where one hangs forever and one has a permanently unreadable
// corpus entry must complete the other N−2, within the deadline, and report
// both failures with their phase and attempt counts — not abort the run.
func TestSuiteDegradeDontDie(t *testing.T) {
	if testing.Short() {
		// The healthy benchmarks must beat a real wall-clock deadline, which
		// a loaded race-instrumented tier-1 run can't guarantee; make chaos
		// runs this under -race without -short, standalone.
		t.Skip("deadline-bound acceptance test; run via make chaos")
	}
	dir := t.TempDir()
	// Every open of grep's entry files fails: a persistently unreadable
	// (transient-class) entry that exhausts the retry budget.
	inj := faultfs.NewInjector(nil, faultfs.Plan{Seed: 7, FailOpenAt: 1, EveryOpen: true, PathContains: "grep-"})
	store, err := corpus.OpenFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	set := telemetry.New()
	s := experiments.NewSuite(core.Config{
		Corpus:    store,
		Schemes:   []string{"sbtb", "cbtb"},
		Telemetry: set,
	})
	s.Workers = 4
	s.Deadline = 5 * time.Second
	s.Retries = 2
	s.RetryBackoff = time.Millisecond
	s.Lookup = func(name string) (*workloads.Benchmark, error) {
		if name == "hung" {
			return hungBenchmark(), nil
		}
		return workloads.ByName(name)
	}

	names := []string{"wc", "cmp", "hung", "grep"}
	start := time.Now()
	p := s.EvalNamesPartial(context.Background(), names)
	elapsed := time.Since(start)

	// The healthy N−2 completed, in their argument slots.
	if got := len(p.Complete()); got != 2 {
		t.Fatalf("%d benchmarks completed, want 2 (errors: %v)", got, p.Errors)
	}
	if p.Evals[0] == nil || p.Evals[0].Name != "wc" || p.Evals[1] == nil || p.Evals[1].Name != "cmp" {
		t.Fatalf("surviving evaluations misplaced: %+v", p.Evals)
	}
	if p.Evals[2] != nil || p.Evals[3] != nil {
		t.Fatal("failed benchmarks produced evaluations")
	}
	// Degrading, not dying, also means not stalling: the whole run is bounded
	// by roughly one deadline, not N of them serially.
	if elapsed > 3*s.Deadline {
		t.Fatalf("partial run took %v, want bounded by the deadline (%v)", elapsed, s.Deadline)
	}

	// Both failures are structured: benchmark, phase, attempts, cause.
	byName := map[string]*experiments.BenchError{}
	for _, be := range p.Errors {
		byName[be.Benchmark] = be
	}
	if len(byName) != 2 {
		t.Fatalf("reported failures %v, want hung and grep", p.Errors)
	}
	hung := byName["hung"]
	if hung == nil || hung.Phase != "deadline" || hung.Attempts != 1 {
		t.Fatalf("hung failure = %+v, want phase deadline after 1 attempt", hung)
	}
	if !errors.Is(hung, context.DeadlineExceeded) {
		t.Fatalf("hung cause %v does not unwrap to DeadlineExceeded", hung)
	}
	grep := byName["grep"]
	if grep == nil || grep.Phase != "corpus" || grep.Attempts != s.Retries+1 {
		t.Fatalf("grep failure = %+v, want phase corpus after %d attempts", grep, s.Retries+1)
	}
	if !corpus.IsTransient(grep) {
		t.Fatalf("grep cause %v is not transient", grep)
	}

	// Scheduler telemetry saw the retries, the failures, and the deadline.
	snap := set.Snapshot().Counters
	if snap["suite.retries"] != int64(s.Retries) {
		t.Fatalf("suite.retries = %d, want %d", snap["suite.retries"], s.Retries)
	}
	if snap["suite.failures"] != 2 || snap["suite.deadlines"] != 1 {
		t.Fatalf("failures=%d deadlines=%d, want 2/1 (snapshot %v)",
			snap["suite.failures"], snap["suite.deadlines"], snap)
	}

	// Failures() keeps the record; Manifests() carries only the survivors.
	fails := s.Failures()
	if len(fails) != 2 || fails[0].Benchmark != "grep" || fails[1].Benchmark != "hung" {
		t.Fatalf("Failures() = %v, want [grep hung]", fails)
	}
	if ms := s.Manifests(); len(ms) != 2 {
		t.Fatalf("Manifests() returned %d entries, want 2", len(ms))
	}

	// The joined error names every failed benchmark.
	msg := p.Err().Error()
	if !strings.Contains(msg, "hung") || !strings.Contains(msg, "grep") {
		t.Fatalf("joined error %q does not name both failures", msg)
	}
}

// TestSuiteEvalNamesContinuesPastFailure: EvalNames must evaluate the whole
// list even when an early name fails, and join every failure rather than
// stopping at the first.
func TestSuiteEvalNamesContinuesPastFailure(t *testing.T) {
	set := telemetry.New()
	s := experiments.NewSuite(core.Config{Telemetry: set})
	s.Workers = 1 // serial: the failing names come first
	_, err := s.EvalNames(context.Background(), []string{"no-such-a", "no-such-b", "wc"})
	if err == nil {
		t.Fatal("unknown benchmarks did not fail the pool")
	}
	msg := err.Error()
	if !strings.Contains(msg, "no-such-a") || !strings.Contains(msg, "no-such-b") {
		t.Fatalf("joined error %q does not name every failure", msg)
	}
	// wc still evaluated despite the earlier failures.
	if got := set.Snapshot().Counters["suite.evals"]; got != 3 {
		t.Fatalf("suite.evals = %d, want 3 (the pool must not stop early)", got)
	}
	if ms := s.Manifests(); len(ms) != 1 || ms[0].Benchmark != "wc" {
		t.Fatalf("wc did not complete: manifests %v", ms)
	}
	// A BenchError in the chain carries the lookup phase.
	var be *experiments.BenchError
	if !errors.As(err, &be) || be.Phase != "lookup" {
		t.Fatalf("joined error lacks a lookup-phase BenchError: %v", err)
	}
}

// TestSuiteRetryHealsTransientFault: a one-shot I/O fault must cost one
// retry, then succeed — the bounded-backoff path's happy ending.
func TestSuiteRetryHealsTransientFault(t *testing.T) {
	dir := t.TempDir()
	warm, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Populate the entry cleanly first.
	if _, err := experiments.NewSuite(core.Config{Corpus: warm}).EvalContext(context.Background(), "wc"); err != nil {
		t.Fatal(err)
	}

	inj := faultfs.NewInjector(nil, faultfs.Plan{FailOpenAt: 1, PathContains: "wc-"})
	store, err := corpus.OpenFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	set := telemetry.New()
	s := experiments.NewSuite(core.Config{Corpus: store, Telemetry: set})
	s.Retries = 3
	s.RetryBackoff = time.Millisecond
	e, err := s.EvalContext(context.Background(), "wc")
	if err != nil {
		t.Fatalf("one-shot fault was not retried away: %v", err)
	}
	if !e.FromCorpus {
		t.Fatal("retried evaluation did not hit the corpus")
	}
	if got := set.Snapshot().Counters["suite.retries"]; got != 1 {
		t.Fatalf("suite.retries = %d, want 1", got)
	}
	if len(s.Failures()) != 0 {
		t.Fatalf("successful retry left failures: %v", s.Failures())
	}
}
