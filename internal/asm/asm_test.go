package asm_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"branchcost/internal/asm"
	"branchcost/internal/isa"
	"branchcost/internal/vm"
	"branchcost/internal/workloads"
)

// TestRoundTripBenchmarks formats and re-assembles every benchmark binary
// and requires exact instruction equality plus identical execution.
func TestRoundTripBenchmarks(t *testing.T) {
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := b.Program()
			if err != nil {
				t.Fatal(err)
			}
			text, err := asm.Format(prog)
			if err != nil {
				t.Fatal(err)
			}
			back, err := asm.Parse(text)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if len(back.Code) != len(prog.Code) {
				t.Fatalf("code length %d != %d", len(back.Code), len(prog.Code))
			}
			for i := range prog.Code {
				a, bI := prog.Code[i], back.Code[i]
				// Fall is reconstructed as next; everything else must match.
				a.Line = 0
				bI.Line = 0
				if !reflect.DeepEqual(a, bI) {
					t.Fatalf("instruction %d differs:\n  have %+v\n  want %+v", i, bI, a)
				}
			}
			if back.Entry != prog.Entry || back.Words < len(back.Data) {
				t.Fatalf("header fields differ")
			}
			if !reflect.DeepEqual(back.Funcs, prog.Funcs) {
				t.Fatalf("functions differ:\n%v\n%v", back.Funcs, prog.Funcs)
			}
			// Execution equivalence on one input.
			in := b.Input(0)
			want, err := vm.Run(prog, in, nil, vm.Config{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := vm.Run(back, in, nil, vm.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Output, got.Output) || want.Steps != got.Steps {
				t.Fatal("execution diverged after round trip")
			}
		})
	}
}

const handWritten = `
; a tiny kernel: copy input to output, uppercase a-z
.words 64
.data 0 0 5

func main
L0:
	in    r4
	slti  r5, r4, 0
	bne   r5, r0, L9      ; EOF?
	ldi   r5, 97
	blt   r4, r5, L7      ; below 'a'
	ldi   r5, 122
	bgt   r4, r5, L7      ; above 'z'
	addi  r4, r4, -32
L7:
	out   r4
	jmp   L0
L9:
	halt
end
`

func TestHandWrittenKernel(t *testing.T) {
	p, err := asm.Parse(handWritten)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, []byte("Hello, wOrld!"), nil, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "HELLO, WORLD!" {
		t.Fatalf("output %q", res.Output)
	}
	if len(p.Funcs) != 1 || p.Funcs[0].Name != "main" {
		t.Fatalf("funcs: %v", p.Funcs)
	}
	if p.Data[2] != 5 || p.Words != 64 {
		t.Fatal("data/words lost")
	}
}

func TestLikelyBitSyntax(t *testing.T) {
	src := `
func main
L0:
	ldi r4, 1
	beq! r4, r0, L3
	jmp! L0
L3:
	halt
end
`
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Code[1].Likely || !p.Code[2].Likely {
		t.Fatal("likely bits lost")
	}
	text, err := asm.Format(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "beq!") || !strings.Contains(text, "jmp!") {
		t.Fatalf("likely suffix not formatted:\n%s", text)
	}
}

func TestJumpTableSyntax(t *testing.T) {
	src := `
func main
L0:
	in r4
	jmpi r4, [L3, L4, L5]
L3:
	halt
L4:
	halt
L5:
	halt
end
`
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{2, 3, 4}
	if !reflect.DeepEqual(p.Code[1].Table, want) {
		t.Fatalf("table = %v, want %v", p.Code[1].Table, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown mnemonic", "func main\n\tfoo r1\nend"},
		{"undefined label", "func main\n\tjmp NOPE\nend"},
		{"duplicate label", "L0:\nL0:\nfunc main\n\thalt\nend"},
		{"bad register", "func main\n\tldi r99, 1\nend"},
		{"bad register name", "func main\n\tmov x4, r1\nend"},
		{"unclosed func", "func main\n\thalt\n"},
		{"end without func", "end"},
		{"nested func", "func a\nfunc b\nend"},
		{"bad mem operand", "func main\n\tld r4, 3[r1]\nend"},
		{"bad words", ".words xyz\nfunc main\n\thalt\nend"},
		{"bad data", ".data 1 z\nfunc main\n\thalt\nend"},
		{"wrong arity", "func main\n\tadd r1, r2\nend"},
		{"empty table", "func main\n\tjmpi r4, []\nend"},
		{"empty label", ":\nfunc main\n\thalt\nend"},
	}
	for _, c := range cases {
		if _, err := asm.Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFormatRejectsTransformed(t *testing.T) {
	p := &isa.Program{
		Code:  []isa.Inst{{Op: isa.HALT}},
		Words: 1,
		Loc:   []int32{0},
	}
	if _, err := asm.Format(p); err == nil {
		t.Fatal("expected rejection")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
; full-line comment

func main
	ldi r4, 7   ; trailing comment
	out r4
	halt
end
`
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, nil, nil, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 7 {
		t.Fatalf("output %v", res.Output)
	}
}

// FuzzParse ensures the assembler never panics and that everything it
// accepts assembles into a structurally valid program.
func FuzzParse(f *testing.F) {
	f.Add(handWritten)
	f.Add("func main\n\thalt\nend")
	f.Add(".words 16\n.data 1 2 3\nfunc main\nL0:\n\tjmp L0\nend")
	f.Add("func main\n\tjmpi r4, [L1]\nL1:\n\thalt\nend")
	f.Add("; comment only")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := asm.Parse(src)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted invalid program: %v\n%s", err, src)
		}
		// Accepted programs must round-trip through Format.
		text, err := asm.Format(p)
		if err != nil {
			t.Fatalf("cannot format accepted program: %v", err)
		}
		if _, err := asm.Parse(text); err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n%s", err, text)
		}
	})
}
