// Package stats provides the small amount of descriptive statistics the
// paper's tables report (means and sample standard deviations) and a plain
// text table renderer used by the experiment harness.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// values).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Table accumulates rows of strings and renders them with aligned columns.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	aligns  []bool // true = right-align
	hasRule []bool // horizontal rule before this row
}

// NewTable returns a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	t := &Table{Title: title, header: headers, aligns: make([]bool, len(headers))}
	for i := range t.aligns {
		t.aligns[i] = true // numeric right-alignment by default
	}
	t.aligns[0] = false // first column is usually a name
	return t
}

// AddRow appends a row of already formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
	t.hasRule = append(t.hasRule, false)
}

// AddRule draws a horizontal rule before the next row.
func (t *Table) AddRule() {
	if len(t.hasRule) < len(t.rows)+1 {
		t.hasRule = append(t.hasRule, true)
	} else {
		t.hasRule[len(t.rows)] = true
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i < len(t.aligns) && t.aligns[i] {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				if i < len(cells)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	rule := strings.Repeat("-", total-2)
	b.WriteString(rule)
	b.WriteByte('\n')
	for i, r := range t.rows {
		if i < len(t.hasRule) && t.hasRule[i] {
			b.WriteString(rule)
			b.WriteByte('\n')
		}
		writeRow(r)
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// F2 formats a float with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }

// F3 formats a float with three decimals.
func F3(f float64) string { return fmt.Sprintf("%.3f", f) }

// Count formats large counts with an M/K suffix as the paper's Table 1 does.
func Count(n int64) string {
	switch {
	case n >= 100_000_000:
		return fmt.Sprintf("%.0fM", float64(n)/1e6)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// CSV renders the table as comma-separated values (header row first, no
// title, rules omitted). Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table; the
// title becomes a bold caption line.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	esc := func(c string) string { return strings.ReplaceAll(c, "|", "\\|") }
	b.WriteByte('|')
	for _, h := range t.header {
		b.WriteString(" " + esc(h) + " |")
	}
	b.WriteByte('\n')
	b.WriteByte('|')
	for i := range t.header {
		if i < len(t.aligns) && t.aligns[i] {
			b.WriteString("---:|")
		} else {
			b.WriteString("---|")
		}
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteByte('|')
		for _, c := range r {
			b.WriteString(" " + esc(c) + " |")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render dispatches on a format name: "text" (default), "csv" or "md".
func (t *Table) Render(format string) (string, error) {
	switch format {
	case "", "text":
		return t.String(), nil
	case "csv":
		return t.CSV(), nil
	case "md", "markdown":
		return t.Markdown(), nil
	}
	return "", fmt.Errorf("stats: unknown format %q", format)
}
