package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"branchcost/internal/core"
	"branchcost/internal/corpus"
	"branchcost/internal/faultfs"
	"branchcost/internal/oracle"
	"branchcost/internal/serve"
	"branchcost/internal/telemetry"
	"branchcost/internal/workloads"
)

// chaosNames is the benchmark mix the availability gate hammers.
var chaosNames = []string{"wc", "tee", "cmp", "grep"}

// schemeScores extracts the per-scheme lines of one /eval NDJSON response,
// keyed by scheme name, with the raw decoded values (so a comparison is
// bit-identity of everything the daemon reports, not a rounded subset).
func schemeScores(t *testing.T, body *bytes.Buffer) map[string]map[string]any {
	t.Helper()
	out := map[string]map[string]any{}
	for _, m := range ndjsonLines(t, body) {
		if m["kind"] != "scheme" {
			continue
		}
		name := m["scheme"].(string)
		delete(m, "kind")
		out[name] = m
	}
	return out
}

// evalScores runs one benchmark evaluation through the server and fails the
// test unless it succeeds cleanly.
func evalScores(t *testing.T, s *serve.Server, name string) map[string]map[string]any {
	t.Helper()
	w := do(s, httptest.NewRequest("POST", "/eval?benchmark="+name, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("eval %s = %d, body %s", name, w.Code, w.Body)
	}
	return schemeScores(t, w.Body)
}

// TestChaosServe is the daemon availability gate: a server whose corpus
// lives on a fault-injecting filesystem (probabilistic read errors, a torn
// rename, per-op latency) and carries a byte budget, under sustained
// concurrent load. The server must
//
//   - never wedge: the whole storm is wall-clock bounded,
//   - keep /healthz answering throughout,
//   - fail only with structured typed errors (never a panic, never a
//     naked non-JSON 500),
//   - drain cleanly within its deadline afterwards,
//   - hold the corpus at or under its byte budget, and
//   - leave entries that — after self-healing — score bit-identically to a
//     chaos-free run, with the replay oracle agreeing on the trace.
func TestChaosServe(t *testing.T) {
	if testing.Short() {
		t.Skip("availability gate; run via make chaos-serve")
	}

	schemes := []string{"sbtb", "cbtb", "gshare"}
	newCfg := func(store *corpus.Store, budget int64) serve.Config {
		return serve.Config{
			Core: core.Config{
				Corpus:    store,
				Schemes:   schemes,
				Telemetry: telemetry.New(),
			},
			Workers:      4,
			Deadline:     30 * time.Second,
			Retries:      3,
			RetryBackoff: time.Millisecond,
			RetrySeed:    1,
			MaxInFlight:  4,
			MaxQueue:     64,
			CorpusBudget: budget,
			DrainTimeout: 10 * time.Second,
		}
	}

	// Chaos-free baseline: scores and corpus footprint of the same mix.
	cleanStore, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cleanSrv := serve.New(newCfg(cleanStore, 0))
	baseline := map[string]map[string]map[string]any{}
	for _, name := range chaosNames {
		baseline[name] = evalScores(t, cleanSrv, name)
	}
	cleanSize, err := cleanStore.Size()
	if err != nil {
		t.Fatal(err)
	}

	// The chaos store: every corpus file operation risks an injected read
	// error, pays latency, and the third rename tears mid-flight. The
	// budget fits roughly two thirds of the full entry set, so recording
	// the mix churns eviction while requests are still arriving.
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil, faultfs.Plan{
		Seed:         42,
		ReadFailProb: 0.2,
		TornRenameAt: 3,
		Latency:      200 * time.Microsecond,
	})
	store, err := corpus.OpenFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	// Nine tenths of the full footprint: always over-full once the whole
	// mix is recorded (eviction stays busy), but with enough resident
	// entries that loads hit disk and the probabilistic read faults bite.
	budget := cleanSize * 9 / 10

	// Each round gets a fresh server over the SAME faulty store — a rolling
	// restart. A fresh suite has no in-memory results, so every round's
	// evaluations go back to the corpus: loads (read faults), re-records
	// after eviction or quarantine (write/rename faults), eviction churn.
	const (
		rounds  = 4
		clients = 6
	)
	servers := make([]*serve.Server, rounds)
	for r := range servers {
		servers[r] = serve.New(newCfg(store, budget))
	}
	s := servers[0]

	done := make(chan struct{})
	var health sync.WaitGroup
	health.Add(1)
	go func() { // /healthz must answer 200 for the whole storm
		defer health.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if w := do(s, httptest.NewRequest("GET", "/healthz", nil)); w.Code != http.StatusOK {
				t.Errorf("/healthz under chaos = %d", w.Code)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, rounds*clients)
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for r := 0; r < rounds; r++ {
			var load sync.WaitGroup
			for c := 0; c < clients; c++ {
				load.Add(1)
				name := chaosNames[c%len(chaosNames)]
				go func(srv *serve.Server, name string) {
					defer load.Done()
					w := do(srv, httptest.NewRequest("POST", "/eval?benchmark="+name, nil))
					results <- result{w.Code, w.Body.Bytes()}
				}(servers[r], name)
			}
			load.Wait()
		}
	}()

	// No wedge: the storm finishes inside a hard wall-clock bound.
	select {
	case <-finished:
	case <-time.After(2 * time.Minute):
		t.Fatal("chaos load wedged: evaluations still in flight after 2m")
	}
	close(done)
	health.Wait()
	close(results)

	ok, failed := 0, 0
	for res := range results {
		switch res.status {
		case http.StatusOK:
			ok++
		default:
			failed++
			// Every failure must be a structured typed error — and never a
			// panic escaping as a response.
			var body struct {
				Error serve.APIError `json:"error"`
			}
			if err := json.Unmarshal(res.body, &body); err != nil || body.Error.Code == "" {
				t.Fatalf("untyped failure under chaos: status %d body %q", res.status, res.body)
			}
			if body.Error.Code == "panic" {
				t.Fatalf("evaluation panicked under chaos: %s", res.body)
			}
		}
	}
	t.Logf("chaos storm: %d ok, %d typed failures, %d injected faults", ok, failed, inj.Injected())
	if ok == 0 {
		t.Fatal("no evaluation succeeded under chaos; the fault plan is too hot to prove availability")
	}
	if inj.Injected() == 0 {
		t.Fatal("no fault fired; the gate proved nothing")
	}

	// Every server drains cleanly within its deadline.
	for r, srv := range servers {
		dstart := time.Now()
		if err := srv.Drain(context.Background()); err != nil {
			t.Fatalf("post-chaos drain of server %d: %v", r, err)
		}
		if elapsed := time.Since(dstart); elapsed > 10*time.Second {
			t.Fatalf("drain of server %d took %v, over the deadline", r, elapsed)
		}
	}

	// The byte budget holds. Under concurrent Puts the budget is an
	// amortized bound (pinned in-flight entries are never shed), so with
	// the fleet drained and every pin released, one more enforcement pass
	// must land the store at or under budget — wreckage from torn renames
	// has no complete entry and never counts; quarantined evidence is
	// exempt by design.
	store.SetBudgetContext(context.Background(), budget)
	size, err := store.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size > budget {
		t.Fatalf("post-chaos corpus size %d over budget %d", size, budget)
	}

	// Bit-identical recovery: a clean server over the chaos directory must
	// self-heal whatever wreckage remains (quarantine + re-record) and
	// reproduce the baseline scores exactly.
	healStore, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	healSrv := serve.New(newCfg(healStore, 0))
	for _, name := range chaosNames {
		got := evalScores(t, healSrv, name)
		want := baseline[name]
		if len(got) != len(want) {
			t.Fatalf("%s: post-chaos schemes %v, want %v", name, keysOf(got), keysOf(want))
		}
		for scheme, wantVals := range want {
			gotVals := got[scheme]
			for field, wv := range wantVals {
				if gv := gotVals[field]; !reflect.DeepEqual(gv, wv) {
					t.Errorf("%s/%s.%s = %v, want %v (not bit-identical after chaos)",
						name, scheme, field, gv, wv)
				}
			}
		}
	}

	// The replay oracle agrees with the healed entries: re-scoring every
	// replayable scheme against the lockstep reference finds no divergence.
	for _, name := range chaosNames {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		k := corpus.KeyFor(name, prog, inputsOf(b))
		tr, _, err := healStore.Load(k)
		if err != nil {
			t.Fatalf("healed store has no %s entry: %v", name, err)
		}
		for _, v := range oracle.VerifyTrace(tr, nil) {
			if v.Div != nil || v.Err != nil {
				t.Errorf("oracle divergence on healed %s trace, scheme %s: div=%v err=%v",
					name, v.Scheme, v.Div, v.Err)
			}
		}
	}
}

func keysOf[V any](m map[string]V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func inputsOf(b *workloads.Benchmark) [][]byte {
	inputs := make([][]byte, b.Runs)
	for i := range inputs {
		inputs[i] = b.Input(i)
	}
	return inputs
}
