package lang_test

import (
	"errors"
	"testing"

	"branchcost/internal/compile"
	"branchcost/internal/lang"
	"branchcost/internal/vm"
)

func interpRun(t *testing.T, src, input string) string {
	t.Helper()
	f, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ip, err := lang.NewInterp(f)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	out, err := ip.Run([]byte(input), 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return string(out)
}

func TestInterpBasics(t *testing.T) {
	cases := []struct{ src, input, want string }{
		{`func main() { putc('h'); putc('i'); }`, "", "hi"},
		{`func main() { var c; c = getc(); while (c != -1) { putc(c); c = getc(); } }`, "echo", "echo"},
		{`func main() { putc('0' + 2 + 3 * 4 - 1); }`, "", "="},
		{`func f(a, b) { return a * b; } func main() { putc('0' + f(2, 4)); }`, "", "8"},
		{`var a[4]; func main() { a[2] = 65; putc(a[2]); }`, "", "A"},
		{`func main() { var i; for (i = 0; i < 3; i += 1) { putc('a' + i); } }`, "", "abc"},
		{`func main() { var n; n = 0; do { n += 1; } while (n < 4); putc('0' + n); }`, "", "4"},
		{`func main() { switch (2) { case 1: putc('a'); case 2: putc('b'); case 3: putc('c'); break; default: putc('d'); } }`, "", "bc"},
		{`func main() { if (3 > 2 && 1 < 2) { putc('y'); } else { putc('n'); } }`, "", "y"},
		{`func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } func main() { putc('0' + fib(10) % 10); }`, "", "5"},
		{`var s = "ok"; func main() { putc(s[0]); putc(s[1]); }`, "", "ok"},
		{`func main() { var x = 9; x &= 5; putc('0' + x); x |= 2; putc('0' + x); x ^= 1; putc('0' + x); }`, "", "132"},
	}
	for i, c := range cases {
		if got := interpRun(t, c.src, c.input); got != c.want {
			t.Errorf("case %d: got %q, want %q", i, got, c.want)
		}
	}
}

func TestInterpBreakContinue(t *testing.T) {
	src := `
func main() {
	var i; var s;
	s = 0;
	for (i = 0; i < 10; i += 1) {
		if (i == 7) { break; }
		if (i % 2 == 0) { continue; }
		s += i;  // 1+3+5 = 9
	}
	putc('0' + s);
}`
	if got := interpRun(t, src, ""); got != "9" {
		t.Fatalf("got %q", got)
	}
}

func TestInterpTraps(t *testing.T) {
	cases := []struct {
		src  string
		want error
	}{
		{`func main() { putc(1 / (getc() + 1)); }`, lang.ErrInterpDivZero},
		{`func main() { putc(1 % (getc() + 1)); }`, lang.ErrInterpDivZero},
		{`var a[4]; func main() { a[0 - 100] = 1; }`, lang.ErrInterpMem},
		{`func main() { while (1) {} }`, lang.ErrInterpSteps},
	}
	for i, c := range cases {
		f, err := lang.Parse(c.src)
		if err != nil {
			t.Fatal(err)
		}
		ip, err := lang.NewInterp(f)
		if err != nil {
			t.Fatal(err)
		}
		// Input {255} makes getc() return 255; the div cases use getc()+1
		// == 256 != 0, so pass empty input for -1+1 == 0 instead.
		_, err = ip.Run(nil, 100000)
		if !errors.Is(err, c.want) {
			t.Errorf("case %d: got %v, want %v", i, err, c.want)
		}
	}
}

func TestInterpNoMain(t *testing.T) {
	f, err := lang.Parse(`func helper() {}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lang.NewInterp(f); !errors.Is(err, lang.ErrInterpNoMain) {
		t.Fatalf("got %v", err)
	}
}

// TestInterpLayoutMatchesCompiler: the addresses the interpreter assigns to
// globals and interned strings equal the compiler's, so address arithmetic
// behaves identically.
func TestInterpLayoutMatchesCompiler(t *testing.T) {
	src := `
var g0;
var arr[5];
var g1 = 7;
var s = "xy";
func main() {
	// Print raw addresses: array base and string literal addresses.
	putc(arr);
	putc("lit");
	putc("lit");  // interned: same address
	putc("other");
	putc(s);
}`
	f, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := lang.NewInterp(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ip.Run(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compile.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, nil, nil, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(res.Output) {
		t.Fatalf("address layouts differ: interp %v, compiled %v", want, res.Output)
	}
	if want[1] != want[2] {
		t.Fatal("string literal not interned")
	}
}

func TestInterpMultipleFiles(t *testing.T) {
	f1, err := lang.Parse(`var shared = 5; func helper() { return shared * 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := lang.Parse(`func main() { putc('0' + helper()); }`)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := lang.NewInterp(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ip.Run(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != ":" { // '0' + 10
		t.Fatalf("got %q", out)
	}
}

func TestInterpDuplicateErrors(t *testing.T) {
	f1, _ := lang.Parse(`var g; func main() {}`)
	f2, _ := lang.Parse(`var g;`)
	if _, err := lang.NewInterp(f1, f2); err == nil {
		t.Fatal("duplicate global accepted")
	}
	f3, _ := lang.Parse(`func main() {}`)
	f4, _ := lang.Parse(`func main() {}`)
	if _, err := lang.NewInterp(f3, f4); err == nil {
		t.Fatal("duplicate function accepted")
	}
}
