package profile

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"branchcost/internal/isa"
)

// fpProfile builds a small profile with a known branch mix: one biased
// conditional, one alternating conditional, one direct jump, one indirect.
func fpProfile() *Profile {
	p := New()
	p.Branches[1] = &BranchStat{Op: isa.BEQ, Exec: 100, Taken: 90}
	p.Branches[2] = &BranchStat{Op: isa.BNE, Exec: 100, Taken: 50}
	p.Branches[3] = &BranchStat{Op: isa.JMP, Exec: 40, Taken: 40}
	p.Branches[4] = &BranchStat{Op: isa.JMPI, Exec: 60, Taken: 60,
		Targets: map[int32]int64{10: 30, 20: 30}}
	p.Steps = 1000
	p.Runs = 1
	return p
}

func TestFingerprintValues(t *testing.T) {
	f := fpProfile().Fingerprint()
	if f.Branches != 300 {
		t.Fatalf("branches = %d, want 300", f.Branches)
	}
	if want := (90.0 + 50 + 40 + 60) / 300; math.Abs(f.TakenRatio-want) > 1e-12 {
		t.Errorf("taken ratio %.6f, want %.6f", f.TakenRatio, want)
	}
	if want := 140.0 / 200; math.Abs(f.CondTakenRatio-want) > 1e-12 {
		t.Errorf("cond taken ratio %.6f, want %.6f", f.CondTakenRatio, want)
	}
	if want := 60.0 / 300; math.Abs(f.IndirectShare-want) > 1e-12 {
		t.Errorf("indirect share %.6f, want %.6f", f.IndirectShare, want)
	}
	if f.Sites != 4 {
		t.Errorf("sites = %d, want 4", f.Sites)
	}
	if f.PerOp["beq"] != 100 || f.PerOp["jmpi"] != 60 {
		t.Errorf("per-op counts wrong: %v", f.PerOp)
	}
}

func TestFingerprintEmptyProfile(t *testing.T) {
	f := New().Fingerprint()
	if f.Branches != 0 || f.TakenRatio != 0 || f.IndirectShare != 0 || f.Sites != 0 {
		t.Fatalf("empty profile fingerprint not zero: %+v", f)
	}
}

func TestFingerprintJSONRoundTrip(t *testing.T) {
	f := fpProfile().Fingerprint()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var got Fingerprint
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip changed the fingerprint:\n got %+v\nwant %+v", got, f)
	}
	// The wire names are part of the format: tools (btrace -ls, the daemon's
	// /benchmarks catalog) key on them.
	for _, key := range []string{"branches", "taken_ratio", "cond_taken_ratio",
		"indirect_share", "per_op", "sites"} {
		if !strings.Contains(string(data), `"`+key+`"`) {
			t.Errorf("serialized fingerprint lacks %q: %s", key, data)
		}
	}
}

func TestFingerprintWithin(t *testing.T) {
	f := fpProfile().Fingerprint()
	tol := Tolerance{TakenRatio: 0.05, IndirectShare: 0.05, SitesFrac: 0.25, OpShareFrac: 0.05}

	if err := f.Within(f, tol); err != nil {
		t.Fatalf("fingerprint not within itself: %v", err)
	}

	// Nudge within band.
	near := f
	near.TakenRatio += 0.04
	near.CondTakenRatio -= 0.04
	near.Sites = 5
	if err := near.Within(f, tol); err != nil {
		t.Fatalf("near fingerprint rejected: %v", err)
	}

	// Each band violation is caught and named.
	cases := []struct {
		name string
		mut  func(*Fingerprint)
		want string
	}{
		{"taken", func(g *Fingerprint) { g.TakenRatio += 0.06 }, "taken ratio"},
		{"cond-taken", func(g *Fingerprint) { g.CondTakenRatio -= 0.06 }, "cond taken ratio"},
		{"indirect", func(g *Fingerprint) { g.IndirectShare += 0.06 }, "indirect share"},
		{"sites", func(g *Fingerprint) { g.Sites = 9 }, "sites"},
		{"op-mix", func(g *Fingerprint) {
			g.PerOp = map[string]int64{"beq": 160, "bne": 40, "jmp": 40, "jmpi": 60}
		}, "op beq share"},
	}
	for _, tc := range cases {
		g := f
		tc.mut(&g)
		err := g.Within(f, tol)
		if err == nil {
			t.Errorf("%s: violation not caught", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}

func TestFingerprintToleranceZeroDisables(t *testing.T) {
	f := fpProfile().Fingerprint()
	far := f
	far.TakenRatio = 0
	far.IndirectShare = 1
	far.Sites = 1000
	if err := far.Within(f, Tolerance{}); err != nil {
		t.Fatalf("zero tolerance should disable all checks, got %v", err)
	}
}

func TestFingerprintString(t *testing.T) {
	s := fpProfile().Fingerprint().String()
	for _, want := range []string{"branches=300", "sites=4", "jmpi=60"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() %q lacks %q", s, want)
		}
	}
}
