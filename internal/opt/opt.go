// Package opt is the optimizer of the MC compiler: block-local constant
// folding, copy/constant propagation, dead-write elimination and redundant
// local-load elimination, followed by a rebuild that renumbers instruction
// IDs and remaps every control target.
//
// The paper's IMPACT compiler is "an optimizing, profiling compiler"; this
// pass brings the generated code's density (instructions per branch) close
// to the paper's reported ~4 by removing the naive code generator's
// redundant loads and moves. All passes are conservative: calls invalidate
// everything, stores through non-frame pointers invalidate tracked memory,
// and instructions with side effects (memory, I/O, control) are never
// deleted.
package opt

import (
	"fmt"

	"branchcost/internal/isa"
)

// Optimize returns an optimized copy of p. The input program must be
// untransformed (no forward slots); optimize before profiling and before
// the Forward Semantic transform.
func Optimize(p *isa.Program) (*isa.Program, error) {
	if p.Loc != nil {
		return nil, fmt.Errorf("opt: program already transformed")
	}
	code := make([]isa.Inst, len(p.Code))
	copy(code, p.Code)

	leaders := findLeaders(code, p.Funcs)

	// Iterate the local passes to a fixpoint (propagation exposes dead
	// writes, whose removal exposes more propagation); bounded for safety.
	for round := 0; round < 4; round++ {
		changed := propagate(code, leaders)
		if !changed {
			break
		}
	}
	dead := findDeadWrites(code, leaders)
	return rebuild(p, code, dead)
}

// findLeaders marks basic-block leader positions.
func findLeaders(code []isa.Inst, funcs []isa.FuncInfo) []bool {
	leaders := make([]bool, len(code))
	if len(code) > 0 {
		leaders[0] = true
	}
	mark := func(id int32) {
		if id >= 0 && int(id) < len(code) {
			leaders[id] = true
		}
	}
	for i, in := range code {
		switch {
		case in.Op.IsCondBranch():
			mark(in.Target)
			mark(in.Fall)
		case in.Op == isa.JMP:
			mark(in.Target)
			mark(int32(i) + 1)
		case in.Op == isa.CALL:
			mark(in.Target)
		case in.Op == isa.JMPI:
			for _, t := range in.Table {
				mark(t)
			}
			mark(int32(i) + 1)
		case in.Op == isa.RET || in.Op == isa.HALT:
			mark(int32(i) + 1)
		}
	}
	for _, f := range funcs {
		mark(f.Entry)
	}
	return leaders
}

// regState tracks what a register holds within a block.
type regState struct {
	kind int   // 0 unknown, 1 constant, 2 copy of another register
	val  int64 // constant value
	src  uint8 // copied-from register
	gen  int   // generation of src at copy time
}

// memKey identifies a tracked frame slot: SP-relative displacement at a
// given SP generation.
type memKey struct {
	disp   int64
	spGen  int
	global bool // true: absolute address (base r0)
}

type blockState struct {
	regs   [isa.NumRegs]regState
	regGen [isa.NumRegs]int
	mem    map[memKey]uint8 // slot -> register known to hold its value
	spGen  int
}

func (bs *blockState) reset() {
	for i := range bs.regs {
		bs.regs[i] = regState{}
		bs.regGen[i]++
	}
	bs.mem = map[memKey]uint8{}
	bs.spGen++
	// r0 is architecturally zero.
	bs.regs[isa.RZ] = regState{kind: 1, val: 0}
}

// setReg invalidates dependent state and records the new contents.
func (bs *blockState) setReg(r uint8, st regState) {
	if r == isa.RZ {
		return // writes to r0 are ignored by the machine
	}
	bs.regGen[r]++
	if r == isa.SP {
		// The frame moved: every tracked slot is stale.
		bs.spGen++
		bs.mem = map[memKey]uint8{}
		st = regState{}
	}
	bs.regs[r] = st
	// Drop memory records pointing at the overwritten register.
	for k, v := range bs.mem {
		if v == r {
			delete(bs.mem, k)
		}
	}
}

// constOf returns the constant a register holds, if known.
func (bs *blockState) constOf(r uint8) (int64, bool) {
	if r == isa.RZ {
		return 0, true
	}
	st := bs.regs[r]
	if st.kind == 1 {
		return st.val, true
	}
	return 0, false
}

// resolveCopy returns the oldest equivalent register still holding the same
// value, enabling operand substitution.
func (bs *blockState) resolveCopy(r uint8) uint8 {
	st := bs.regs[r]
	if st.kind == 2 && bs.regGen[st.src] == st.gen {
		return st.src
	}
	return r
}

// alu computes a register-register ALU result.
func alu(op isa.Op, a, b int64) (int64, bool) {
	switch op {
	case isa.ADD:
		return a + b, true
	case isa.SUB:
		return a - b, true
	case isa.MUL:
		return a * b, true
	case isa.DIV:
		if b == 0 {
			return 0, false // preserve the trap
		}
		return a / b, true
	case isa.MOD:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case isa.AND:
		return a & b, true
	case isa.OR:
		return a | b, true
	case isa.XOR:
		return a ^ b, true
	case isa.SHL:
		return a << (uint64(b) & 63), true
	case isa.SHR:
		return a >> (uint64(b) & 63), true
	case isa.SLT:
		return b2i(a < b), true
	case isa.SLE:
		return b2i(a <= b), true
	case isa.SEQ:
		return b2i(a == b), true
	case isa.SNE:
		return b2i(a != b), true
	}
	return 0, false
}

func aluImm(op isa.Op, a, imm int64) (int64, bool) {
	switch op {
	case isa.ADDI:
		return a + imm, true
	case isa.MULI:
		return a * imm, true
	case isa.ANDI:
		return a & imm, true
	case isa.ORI:
		return a | imm, true
	case isa.SHLI:
		return a << (uint64(imm) & 63), true
	case isa.SHRI:
		return a >> (uint64(imm) & 63), true
	case isa.SLTI:
		return b2i(a < imm), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// propagate performs one forward pass of constant folding, copy
// propagation and redundant-load elimination over every block. It rewrites
// instructions in place (never changing their count) and reports whether
// anything changed.
func propagate(code []isa.Inst, leaders []bool) bool {
	changed := false
	bs := &blockState{}
	bs.reset()

	// subst replaces a source operand with an equivalent older register.
	subst := func(r *uint8) {
		if n := bs.resolveCopy(*r); n != *r {
			*r = n
			changed = true
		}
	}

	for i := range code {
		if leaders[i] {
			bs.reset()
		}
		in := &code[i]
		switch in.Op {
		case isa.NOP, isa.HALT:
			// no effect

		case isa.LDI:
			bs.setReg(in.Rd, regState{kind: 1, val: in.Imm})

		case isa.MOV:
			subst(&in.Rs)
			if v, ok := bs.constOf(in.Rs); ok {
				*in = isa.Inst{Op: isa.LDI, Rd: in.Rd, Imm: v, ID: in.ID, Line: in.Line}
				bs.setReg(in.Rd, regState{kind: 1, val: v})
				changed = true
				break
			}
			bs.setReg(in.Rd, regState{kind: 2, src: in.Rs, gen: bs.regGen[in.Rs]})

		case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
			isa.XOR, isa.SHL, isa.SHR, isa.SLT, isa.SLE, isa.SEQ, isa.SNE:
			subst(&in.Rs)
			subst(&in.Rt)
			a, aok := bs.constOf(in.Rs)
			b, bok := bs.constOf(in.Rt)
			if aok && bok {
				if v, ok := alu(in.Op, a, b); ok {
					*in = isa.Inst{Op: isa.LDI, Rd: in.Rd, Imm: v, ID: in.ID, Line: in.Line}
					bs.setReg(in.Rd, regState{kind: 1, val: v})
					changed = true
					break
				}
			}
			// Strength reduction: op with a constant right operand becomes
			// the immediate form when one exists.
			if bok {
				var imm isa.Op
				switch in.Op {
				case isa.ADD:
					imm = isa.ADDI
				case isa.SUB:
					imm = isa.ADDI
					b = -b
				case isa.MUL:
					imm = isa.MULI
				case isa.AND:
					imm = isa.ANDI
				case isa.OR:
					imm = isa.ORI
				case isa.SLT:
					imm = isa.SLTI
				}
				if imm != 0 {
					*in = isa.Inst{Op: imm, Rd: in.Rd, Rs: in.Rs, Imm: b, ID: in.ID, Line: in.Line}
					bs.setReg(in.Rd, regState{})
					changed = true
					break
				}
			}
			bs.setReg(in.Rd, regState{})

		case isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.SHLI, isa.SHRI, isa.SLTI:
			subst(&in.Rs)
			if a, ok := bs.constOf(in.Rs); ok {
				if v, ok2 := aluImm(in.Op, a, in.Imm); ok2 {
					*in = isa.Inst{Op: isa.LDI, Rd: in.Rd, Imm: v, ID: in.ID, Line: in.Line}
					bs.setReg(in.Rd, regState{kind: 1, val: v})
					changed = true
					break
				}
			}
			if in.Op == isa.ADDI && in.Imm == 0 && in.Rd == in.Rs {
				// sp adjustments of zero appear around zero-arg calls.
				*in = isa.Inst{Op: isa.NOP, ID: in.ID, Line: in.Line}
				changed = true
				break
			}
			bs.setReg(in.Rd, regState{})

		case isa.LD:
			subst(&in.Rs)
			if key, ok := slotOf(bs, in.Rs, in.Imm); ok {
				if src, have := bs.mem[key]; have {
					if src == in.Rd {
						// The register already holds the slot's value.
						*in = isa.Inst{Op: isa.NOP, ID: in.ID, Line: in.Line}
						changed = true
						break
					}
					// The slot's value is in another register.
					*in = isa.Inst{Op: isa.MOV, Rd: in.Rd, Rs: src, ID: in.ID, Line: in.Line}
					bs.setReg(in.Rd, regState{kind: 2, src: src, gen: bs.regGen[src]})
					bs.mem[key] = src
					changed = true
					break
				}
				bs.setReg(in.Rd, regState{})
				bs.mem[key] = in.Rd
				break
			}
			bs.setReg(in.Rd, regState{})

		case isa.ST:
			subst(&in.Rs)
			subst(&in.Rt)
			if key, ok := slotOf(bs, in.Rs, in.Imm); ok {
				// A store through a known slot invalidates only conflicting
				// records... conservatively: any store may alias any global
				// or frame slot except the one it provably writes, UNLESS
				// both are frame slots at the same SP generation (the frame
				// is not aliased by construction of the code generator).
				invalidateMem(bs, key)
				bs.mem[key] = in.Rt
			} else {
				bs.mem = map[memKey]uint8{}
			}

		case isa.CALL:
			// The callee clobbers registers and memory.
			bs.reset()

		case isa.IN:
			bs.setReg(in.Rd, regState{})
		case isa.OUT:
			subst(&in.Rs)

		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLE, isa.BGT:
			subst(&in.Rs)
			subst(&in.Rt)
		case isa.JMPI:
			subst(&in.Rs)
		case isa.JMP, isa.RET:
			// no register effects
		}
	}
	return changed
}

// slotOf classifies an address as a trackable slot: frame (SP base) or
// absolute (r0 base).
func slotOf(bs *blockState, base uint8, disp int64) (memKey, bool) {
	switch base {
	case isa.SP:
		return memKey{disp: disp, spGen: bs.spGen}, true
	case isa.RZ:
		return memKey{disp: disp, global: true}, true
	}
	return memKey{}, false
}

// invalidateMem drops records that may alias the written slot. Frame slots
// at the current SP generation do not alias globals (the stack sits at the
// top of memory, globals at the bottom, and the generator never takes the
// address of a frame slot); distinct displacements within one generation do
// not alias each other.
func invalidateMem(bs *blockState, written memKey) {
	for k := range bs.mem {
		if k == written {
			delete(bs.mem, k)
			continue
		}
		sameClass := k.global == written.global && (!k.global && k.spGen == written.spGen || k.global)
		if sameClass {
			// Same class, different displacement: no alias.
			if k.disp != written.disp {
				continue
			}
			delete(bs.mem, k)
			continue
		}
		// Cross-class (frame vs global, or unknown frame generation):
		// conservatively drop.
		delete(bs.mem, k)
	}
}

// findDeadWrites marks pure register-writing instructions whose result is
// overwritten before any read within the same block.
func findDeadWrites(code []isa.Inst, leaders []bool) []bool {
	dead := make([]bool, len(code))
	// Walk each block backwards with a "will be overwritten before read"
	// set; block boundaries and any control/call flush the set (registers
	// are considered live out of the block).
	overwritten := map[uint8]bool{}
	for i := len(code) - 1; i >= 0; i-- {
		in := code[i]
		if isBlockEnd(in.Op) {
			overwritten = map[uint8]bool{}
			switch in.Op {
			case isa.RET:
				// The calling convention makes every register except the
				// return value and the stack pointer dead across a return
				// (RA is read by the RET itself and re-added below).
				for r := uint8(0); r < isa.NumRegs; r++ {
					if r != isa.RV && r != isa.SP {
						overwritten[r] = true
					}
				}
			case isa.HALT:
				for r := uint8(0); r < isa.NumRegs; r++ {
					overwritten[r] = true
				}
			}
		}
		w := writtenReg(in)
		pure := isPure(in.Op)
		if w >= 0 && pure && overwritten[uint8(w)] {
			dead[i] = true
			continue
		}
		if w >= 0 {
			overwritten[uint8(w)] = true
		}
		for _, r := range readRegs(in) {
			delete(overwritten, r)
		}
		if i < len(leaders) && leaders[i] {
			// Leader: instructions above are a different block.
			overwritten = map[uint8]bool{}
		}
	}
	return dead
}

func isBlockEnd(op isa.Op) bool {
	return op.IsControl() // branches, calls, ret, halt all end the window
}

// isPure reports whether deleting the instruction (when its result is
// unread) is observationally safe. Loads are impure here only because they
// can trap on wild addresses; frame/global loads cannot, so LD is treated
// pure — its address operands are register+constant and the code generator
// only emits in-range frame/global displacements. IN consumes input; CALL,
// control and stores are obviously impure.
func isPure(op isa.Op) bool {
	switch op {
	case isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.SLT, isa.SLE, isa.SEQ, isa.SNE,
		isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.SHLI, isa.SHRI,
		isa.SLTI, isa.LDI, isa.MOV, isa.LD:
		return true
	}
	// DIV and MOD can trap on a zero divisor; they are never deleted.
	return false
}

func writtenReg(in isa.Inst) int {
	switch in.Op {
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.SLT, isa.SLE, isa.SEQ, isa.SNE,
		isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.SHLI, isa.SHRI,
		isa.SLTI, isa.LDI, isa.MOV, isa.LD, isa.IN:
		return int(in.Rd)
	case isa.CALL:
		return isa.RA
	}
	return -1
}

func readRegs(in isa.Inst) []uint8 {
	switch in.Op {
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.SLT, isa.SLE, isa.SEQ, isa.SNE:
		return []uint8{in.Rs, in.Rt}
	case isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.SHLI, isa.SHRI,
		isa.SLTI, isa.MOV, isa.LD, isa.JMPI, isa.OUT:
		return []uint8{in.Rs}
	case isa.ST:
		return []uint8{in.Rs, in.Rt}
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLE, isa.BGT:
		return []uint8{in.Rs, in.Rt}
	case isa.RET:
		return []uint8{isa.RA}
	}
	return nil
}

// rebuild drops NOPs (created by folding) and dead writes, renumbers IDs,
// and remaps every control target.
func rebuild(p *isa.Program, code []isa.Inst, dead []bool) (*isa.Program, error) {
	// Never drop an instruction that is a control target... targets are
	// remapped to the next surviving instruction, which is correct because
	// a removed instruction is a no-op at that point (dead write or NOP).
	remap := make([]int32, len(code)+1)
	var out []isa.Inst
	for i := range code {
		remap[i] = int32(len(out))
		drop := dead[i] || (code[i].Op == isa.NOP && i != len(code)-1)
		if !drop {
			out = append(out, code[i])
		}
	}
	remap[len(code)] = int32(len(out))
	if len(out) == 0 {
		return nil, fmt.Errorf("opt: optimized away the whole program")
	}

	for i := range out {
		in := &out[i]
		in.ID = int32(i)
		switch {
		case in.Op.IsCondBranch():
			in.Target = remap[in.Target]
			in.Fall = remap[in.Fall]
		case in.Op == isa.JMP || in.Op == isa.CALL:
			in.Target = remap[in.Target]
		case in.Op == isa.JMPI:
			tbl := make([]int32, len(in.Table))
			for j, t := range in.Table {
				tbl[j] = remap[t]
			}
			in.Table = tbl
		}
	}

	funcs := make([]isa.FuncInfo, len(p.Funcs))
	for i, f := range p.Funcs {
		funcs[i] = isa.FuncInfo{Name: f.Name, Entry: remap[f.Entry], End: remap[f.End]}
	}
	np := &isa.Program{
		Code:        out,
		Data:        p.Data,
		Words:       p.Words,
		Funcs:       funcs,
		Entry:       remap[p.Entry],
		SourceLines: p.SourceLines,
	}
	if err := np.Validate(); err != nil {
		return nil, fmt.Errorf("opt: internal error: produced invalid program: %w", err)
	}
	return np, nil
}
