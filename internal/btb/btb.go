// Package btb implements the two hardware schemes of the paper: the Simple
// Branch Target Buffer (SBTB) and the Counter-based Branch Target Buffer
// (CBTB), both built on a shared associative buffer with LRU replacement.
// The paper's configuration is 256 entries, fully associative, LRU; the
// CBTB uses a 2-bit saturating counter with threshold T = 2.
package btb

import (
	"fmt"

	"branchcost/internal/predict"
	"branchcost/internal/vm"
)

// Entry is one buffer line. Target caches the most recent taken target
// (standing in for the "first k target instructions" the hardware stores —
// only the address matters to the prediction-accuracy measurement).
type Entry struct {
	PC      int32
	Target  int32
	Counter uint8
	valid   bool
	lru     uint64
}

// Buffer is an associative cache of branch entries with LRU replacement.
// Assoc == Entries gives the paper's fully-associative organization.
//
// Membership is tracked in a pc -> slot index so Lookup and Delete cost
// O(1) regardless of associativity (a 1024-entry fully-associative lookup
// per branch event would otherwise dominate every sweep); only choosing an
// eviction victim scans the set, and only when the set is full. The index
// is a dense slice — branch PCs are small nonnegative program positions, so
// direct indexing beats hashing on the simulator's hottest operation.
type Buffer struct {
	sets  [][]Entry
	free  [][]int32 // per-set stack of invalid slots
	index []int32   // pc -> slot+1 within its set; 0 = absent
	count int       // valid entries
	assoc int
	clock uint64

	// Capacity metrics.
	inserts int64
	evicts  int64
}

// NewBuffer returns a buffer with the given total entries and associativity.
// It panics if entries is not a positive multiple of assoc.
func NewBuffer(entries, assoc int) *Buffer {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		panic(fmt.Sprintf("btb: bad geometry %d entries / %d-way", entries, assoc))
	}
	nsets := entries / assoc
	b := &Buffer{
		sets:  make([][]Entry, nsets),
		free:  make([][]int32, nsets),
		assoc: assoc,
	}
	for i := range b.sets {
		b.sets[i] = make([]Entry, assoc)
		b.free[i] = freeStack(make([]int32, 0, assoc), assoc)
	}
	return b
}

// freeStack fills f with every slot, popping order low-to-high.
func freeStack(f []int32, assoc int) []int32 {
	for j := assoc - 1; j >= 0; j-- {
		f = append(f, int32(j))
	}
	return f
}

// Entries returns the total capacity.
func (b *Buffer) Entries() int { return len(b.sets) * b.assoc }

// Assoc returns the associativity.
func (b *Buffer) Assoc() int { return b.assoc }

// Evictions returns how many valid entries were replaced.
func (b *Buffer) Evictions() int64 { return b.evicts }

// Inserts returns how many entries were allocated (excluding refreshes of
// already-present lines).
func (b *Buffer) Inserts() int64 { return b.inserts }

// metrics implements predict.MetricSource for the buffer-backed schemes.
func (b *Buffer) metrics() map[string]int64 {
	return map[string]int64{
		"inserts":   b.inserts,
		"evictions": b.evicts,
		"occupancy": int64(b.count),
	}
}

// entryBits is the storage cost of one buffer line: a 32-bit tag (the full
// PC — the simulator's PCs are program positions, charged at word width), a
// 32-bit target and a valid bit. Counter bits are charged by the scheme.
const entryBits = 32 + 32 + 1

// storageBits is the buffer's state in bits, excluding per-entry counters.
func (b *Buffer) storageBits() int64 {
	return int64(b.Entries()) * entryBits
}

func (b *Buffer) setIdx(pc int32) uint32 {
	return uint32(pc) % uint32(len(b.sets))
}

// Lookup finds the entry for pc, updating its LRU stamp on hit.
func (b *Buffer) Lookup(pc int32) (*Entry, bool) {
	b.clock++
	if int(pc) < len(b.index) {
		if s := b.index[pc]; s != 0 {
			e := &b.sets[b.setIdx(pc)][s-1]
			e.lru = b.clock
			return e, true
		}
	}
	return nil, false
}

// Insert returns the entry for pc, allocating (and evicting the LRU line of
// the set if necessary) when absent. The returned entry is valid and has its
// LRU stamp refreshed; newly allocated entries are zeroed.
func (b *Buffer) Insert(pc int32) *Entry {
	b.clock++
	si := b.setIdx(pc)
	set := b.sets[si]
	if int(pc) >= len(b.index) {
		grown := make([]int32, int(pc)+64)
		copy(grown, b.index)
		b.index = grown
	} else if s := b.index[pc]; s != 0 {
		e := &set[s-1]
		e.lru = b.clock
		return e
	}
	var slot int32
	if f := b.free[si]; len(f) > 0 {
		slot = f[len(f)-1]
		b.free[si] = f[:len(f)-1]
	} else {
		// Set full: evict the least recently used line. Stamps are unique
		// (the clock advances on every access), so the victim is unique.
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[slot].lru {
				slot = int32(i)
			}
		}
		b.index[set[slot].PC] = 0
		b.evicts++
		b.count--
	}
	b.inserts++
	b.count++
	set[slot] = Entry{PC: pc, valid: true, lru: b.clock}
	b.index[pc] = slot + 1
	return &set[slot]
}

// Delete invalidates the entry for pc if present.
func (b *Buffer) Delete(pc int32) {
	if int(pc) >= len(b.index) {
		return
	}
	s := b.index[pc]
	if s == 0 {
		return
	}
	si := b.setIdx(pc)
	b.sets[si][s-1] = Entry{}
	b.index[pc] = 0
	b.count--
	b.free[si] = append(b.free[si], s-1)
}

// Reset invalidates every entry (context-switch simulation).
func (b *Buffer) Reset() {
	for si, set := range b.sets {
		for i := range set {
			set[i] = Entry{}
		}
		b.free[si] = freeStack(b.free[si][:0], b.assoc)
	}
	for i := range b.index {
		b.index[i] = 0
	}
	b.count = 0
}

// Len returns the number of valid entries.
func (b *Buffer) Len() int { return b.count }

// SBTB is the Simple Branch Target Buffer: it remembers taken branches; a
// hit predicts taken, a miss predicts not-taken, and a hit whose branch
// executes not-taken is deleted.
type SBTB struct{ buf *Buffer }

// NewSBTB returns an SBTB with the given geometry. The paper's
// configuration is NewSBTB(256, 256).
func NewSBTB(entries, assoc int) *SBTB { return &SBTB{buf: NewBuffer(entries, assoc)} }

// Name implements predict.Predictor.
func (s *SBTB) Name() string { return "sbtb" }

// Buffer exposes the underlying buffer for inspection in tests.
func (s *SBTB) Buffer() *Buffer { return s.buf }

// Predict implements predict.Predictor.
func (s *SBTB) Predict(ev vm.BranchEvent) predict.Prediction {
	if e, ok := s.buf.Lookup(ev.PC); ok {
		return predict.Prediction{Taken: true, Target: e.Target, Hit: true}
	}
	return predict.Prediction{Taken: false, Hit: false}
}

// Update implements predict.Predictor.
func (s *SBTB) Update(ev vm.BranchEvent) {
	if ev.Taken {
		e := s.buf.Insert(ev.PC)
		e.Target = ev.Target
		return
	}
	s.buf.Delete(ev.PC)
}

// Reset implements predict.Predictor.
func (s *SBTB) Reset() { s.buf.Reset() }

// Metrics implements predict.MetricSource.
func (s *SBTB) Metrics() map[string]int64 {
	m := s.buf.metrics()
	m["storage_bits"] = s.StorageBits()
	return m
}

// StorageBits implements predict.StorageSized.
func (s *SBTB) StorageBits() int64 { return s.buf.storageBits() }

// CBTB is the Counter-based Branch Target Buffer: every executed branch is
// eligible for an entry; an n-bit saturating counter with threshold T
// predicts the direction (taken when counter >= T).
//
// The paper's text says "predicted taken when C > T", but with its T = 2 and
// initialization to T on a taken branch that reading would predict a
// just-taken branch not-taken; we use >= as in J. E. Smith's original
// scheme, which the paper cites as the source.
type CBTB struct {
	buf       *Buffer
	bits      int
	max       uint8 // 2^bits - 1
	threshold uint8
}

// NewCBTB returns a CBTB with the given geometry and counter configuration.
// The paper's configuration is NewCBTB(256, 256, 2, 2).
func NewCBTB(entries, assoc, bits int, threshold uint8) *CBTB {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("btb: counter bits %d out of range [1,8]", bits))
	}
	maxC := uint8(1)<<bits - 1
	if threshold > maxC {
		panic(fmt.Sprintf("btb: threshold %d exceeds counter max %d", threshold, maxC))
	}
	return &CBTB{buf: NewBuffer(entries, assoc), bits: bits, max: maxC, threshold: threshold}
}

// Name implements predict.Predictor.
func (c *CBTB) Name() string { return "cbtb" }

// Buffer exposes the underlying buffer for inspection in tests.
func (c *CBTB) Buffer() *Buffer { return c.buf }

// Predict implements predict.Predictor.
func (c *CBTB) Predict(ev vm.BranchEvent) predict.Prediction {
	if e, ok := c.buf.Lookup(ev.PC); ok {
		if e.Counter >= c.threshold {
			return predict.Prediction{Taken: true, Target: e.Target, Hit: true}
		}
		return predict.Prediction{Taken: false, Hit: true}
	}
	return predict.Prediction{Taken: false, Hit: false}
}

// Update implements predict.Predictor.
func (c *CBTB) Update(ev vm.BranchEvent) {
	e, ok := c.buf.Lookup(ev.PC)
	if !ok {
		e = c.buf.Insert(ev.PC)
		e.Target = -1
		if ev.Taken {
			e.Counter = c.threshold
		} else if c.threshold > 0 {
			e.Counter = c.threshold - 1
		}
		if ev.Taken {
			e.Target = ev.Target
		}
		return
	}
	if ev.Taken {
		if e.Counter < c.max {
			e.Counter++
		}
		e.Target = ev.Target
	} else if e.Counter > 0 {
		e.Counter--
	}
}

// Reset implements predict.Predictor.
func (c *CBTB) Reset() { c.buf.Reset() }

// Metrics implements predict.MetricSource.
func (c *CBTB) Metrics() map[string]int64 {
	m := c.buf.metrics()
	m["storage_bits"] = c.StorageBits()
	return m
}

// StorageBits implements predict.StorageSized: the buffer lines plus one
// counter per entry.
func (c *CBTB) StorageBits() int64 {
	return c.buf.storageBits() + int64(c.buf.Entries())*int64(c.bits)
}
